package core

import (
	"fmt"
	"sort"

	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/stats"
)

// ReductionGroup is the §VI-C statistical-activation-reduction automaton
// (Fig. 7): p Hamming macros share a Local Neighbor Counter (LNC) with
// threshold k'. The LNC counts reporting activations within the group and,
// once k' reporting cycles have occurred, resets every inverted-Hamming-
// distance counter in the group, suppressing the remaining (farther)
// activations and cutting report bandwidth by ~p/k'.
type ReductionGroup struct {
	Macros []*Macro
	LNC    automata.ElementID
}

// BuildReductionGroup appends p macros for the vectors of ds plus the local
// neighbor counter with threshold kPrime. Report IDs are baseID + index.
func BuildReductionGroup(net *automata.Network, ds *bitvec.Dataset, l Layout, kPrime int, baseID int32) *ReductionGroup {
	if kPrime <= 0 {
		panic(fmt.Sprintf("core: kPrime must be positive, got %d", kPrime))
	}
	if ds.Len() == 0 {
		panic("core: BuildReductionGroup on empty dataset")
	}
	g := &ReductionGroup{}
	for i := 0; i < ds.Len(); i++ {
		g.Macros = append(g.Macros, BuildMacro(net, ds.At(i), l, baseID+int32(i)))
	}
	g.LNC = net.AddCounter(kPrime, automata.CounterPulse,
		automata.WithName(fmt.Sprintf("lnc.%d", baseID)))
	for _, m := range g.Macros {
		// Reporting activations drive the LNC; simultaneous reports within a
		// cycle merge into one increment (counters increment by at most one,
		// §II-B), so the LNC counts distinct reporting cycles.
		net.ConnectCount(m.Report, g.LNC)
		// The LNC pulse resets every IHD counter in the group.
		net.ConnectReset(g.LNC, m.Counter)
	}
	// The shared end-of-query reset: any macro's EOF state re-arms the LNC
	// for the next query window.
	net.ConnectReset(g.Macros[0].EOF, g.LNC)
	return g
}

// SuppressionMode selects how the host-level model mirrors the hardware.
type SuppressionMode int

const (
	// SuppressFaithful matches the cycle-accurate automata of
	// BuildReductionGroup. The LNC observes reporting states one cycle late
	// and its reset lands one cycle later still, so pulses up to two CYCLES
	// after the k'-th distinct reporting cycle escape. In distance terms:
	// with h_(k') the k'-th largest distinct inverted Hamming distance of
	// the group, every vector with ihd >= h_(k') - 2 is delivered. Property
	// tests validate this model against the automata.
	SuppressFaithful SuppressionMode = iota
	// SuppressStrict is the paper's Table VI accounting: each group
	// contributes only its top k'-1 distinct distance values (k'=1 delivers
	// nothing, which is how the paper's 100%-incorrect row arises). See
	// README.md for the discussion of the discrepancy.
	SuppressStrict
)

// SuppressGroup returns, for the inverted Hamming distances of one group's
// vectors, which vectors' reports are delivered to the host under the given
// mode.
func SuppressGroup(ihds []int, kPrime int, mode SuppressionMode) []bool {
	out := make([]bool, len(ihds))
	distinct := distinctDescending(ihds)
	deliverAll := func() []bool {
		for i := range out {
			out[i] = true
		}
		return out
	}
	var cutoff int
	switch mode {
	case SuppressFaithful:
		// The LNC needs k' distinct reporting cycles to fire at all.
		if len(distinct) <= kPrime {
			return deliverAll()
		}
		cutoff = distinct[kPrime-1] - 2
	case SuppressStrict:
		if kPrime-1 >= len(distinct) {
			return deliverAll()
		}
		if kPrime-1 <= 0 {
			return out
		}
		cutoff = distinct[kPrime-2]
	default:
		panic(fmt.Sprintf("core: unknown suppression mode %d", mode))
	}
	for i, h := range ihds {
		out[i] = h >= cutoff
	}
	return out
}

func distinctDescending(ihds []int) []int {
	seen := map[int]bool{}
	var vals []int
	for _, h := range ihds {
		if !seen[h] {
			seen[h] = true
			vals = append(vals, h)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	return vals
}

// ReductionExperiment is one Table VI configuration.
type ReductionExperiment struct {
	Dim    int
	N      int // dataset size (paper: 1024)
	P      int // group size (paper: 16)
	K      int // global neighbors wanted
	KPrime int // per-group suppression threshold
	Runs   int // randomized repetitions (paper: 100)
	Mode   SuppressionMode
}

// ReductionResult aggregates a Monte Carlo run.
type ReductionResult struct {
	Incorrect        int
	Runs             int
	DeliveredPerRun  float64 // average reports delivered per query
	BandwidthFactor  float64 // p*groups / delivered — the data reduction
	IncorrectPercent float64
}

// RunReduction executes the paper's Table VI methodology: "we randomly
// generate dataset and query vectors, partition the dataset vectors, execute
// local kNN, and perform global top-k sort to determine if exact kNN results
// are computed", repeated Runs times.
func RunReduction(exp ReductionExperiment, rng *stats.RNG) ReductionResult {
	if exp.N%exp.P != 0 {
		panic(fmt.Sprintf("core: dataset size %d not divisible by group size %d", exp.N, exp.P))
	}
	res := ReductionResult{Runs: exp.Runs}
	totalDelivered := 0
	for run := 0; run < exp.Runs; run++ {
		ds := bitvec.RandomDataset(rng, exp.N, exp.Dim)
		q := bitvec.Random(rng, exp.Dim)
		exact := knn.Linear(ds, q, exp.K)
		var delivered []knn.Neighbor
		for lo := 0; lo < exp.N; lo += exp.P {
			ihds := make([]int, exp.P)
			for i := range ihds {
				ihds[i] = exp.Dim - ds.Hamming(lo+i, q)
			}
			keep := SuppressGroup(ihds, exp.KPrime, exp.Mode)
			for i, k := range keep {
				if k {
					delivered = append(delivered, knn.Neighbor{ID: lo + i, Dist: exp.Dim - ihds[i]})
				}
			}
		}
		totalDelivered += len(delivered)
		knn.SortNeighbors(delivered)
		got := TopK(delivered, exp.K)
		if !neighborsEqual(got, exact) {
			res.Incorrect++
		}
	}
	res.DeliveredPerRun = float64(totalDelivered) / float64(exp.Runs)
	if res.DeliveredPerRun > 0 {
		res.BandwidthFactor = float64(exp.N) / res.DeliveredPerRun
	}
	res.IncorrectPercent = 100 * float64(res.Incorrect) / float64(exp.Runs)
	return res
}

func neighborsEqual(a, b []knn.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
