package core

import (
	"fmt"

	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
)

// ApproxEngine is the statistical-activation-reduction engine: the linear
// kNN design of Engine with every partition's macros grouped under local
// neighbor counters (§VI-C, Fig. 7). Each group of P macros reports only
// its nearest members per query, cutting report bandwidth by roughly P/k'
// while returning the exact top-k with high probability — the mostly-correct
// trade the paper quantifies in Table VI.
type ApproxEngine struct {
	board      *ap.Board
	layout     Layout
	capacity   int
	groupSize  int
	kPrime     int
	partitions []partition
	datasetLen int
}

// NewApproxEngine partitions ds into board images of reduction groups.
// groupSize is the paper's p (16 in Table VI); kPrime the local suppression
// threshold.
func NewApproxEngine(board *ap.Board, ds *bitvec.Dataset, opts EngineOptions, groupSize, kPrime int) (*ApproxEngine, error) {
	layout := NewLayout(ds.Dim())
	if opts.Layout != nil {
		layout = *opts.Layout
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if groupSize <= 1 {
		return nil, fmt.Errorf("core: reduction group size %d must exceed 1", groupSize)
	}
	if kPrime <= 0 {
		return nil, fmt.Errorf("core: kPrime %d must be positive", kPrime)
	}
	capacity := opts.Capacity
	if capacity == 0 {
		capacity = DefaultBoardCapacity(ds.Dim())
	}
	e := &ApproxEngine{
		board: board, layout: layout, capacity: capacity,
		groupSize: groupSize, kPrime: kPrime, datasetLen: ds.Len(),
	}
	for lo := 0; lo < ds.Len(); lo += capacity {
		hi := lo + capacity
		if hi > ds.Len() {
			hi = ds.Len()
		}
		net := automata.NewNetwork()
		for glo := lo; glo < hi; glo += groupSize {
			ghi := glo + groupSize
			if ghi > hi {
				ghi = hi
			}
			if ghi-glo < 2 {
				// A trailing singleton group gets a plain macro: suppression
				// over one vector is meaningless.
				BuildMacro(net, ds.At(glo), e.layout, int32(glo-lo))
				continue
			}
			BuildReductionGroup(net, ds.Slice(glo, ghi), e.layout, kPrime, int32(glo-lo))
		}
		if err := net.Validate(); err != nil {
			return nil, fmt.Errorf("core: reduction partition [%d,%d): %w", lo, hi, err)
		}
		placement, err := ap.Compile(net, board.Config())
		if err != nil {
			return nil, fmt.Errorf("core: reduction partition [%d,%d): %w", lo, hi, err)
		}
		e.partitions = append(e.partitions, partition{
			net: net, placement: placement, idOffset: lo, size: hi - lo,
		})
	}
	return e, nil
}

// Partitions returns the number of board configurations.
func (e *ApproxEngine) Partitions() int { return len(e.partitions) }

// KPrime returns the local suppression threshold.
func (e *ApproxEngine) KPrime() int { return e.kPrime }

// Query answers the batch approximately: suppressed vectors never report, so
// the host sorts only the surviving candidates. Results are exact whenever
// each query's true top-k survives suppression (Table VI measures how often
// that fails).
func (e *ApproxEngine) Query(queries []bitvec.Vector, k int) ([][]knn.Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	results := make([][]knn.Neighbor, len(queries))
	stream := BuildStream(queries, e.layout)
	for _, p := range e.partitions {
		if err := e.board.ConfigurePlaced(p.net, p.placement); err != nil {
			return nil, err
		}
		reports := e.board.Stream(stream)
		decoded, err := DecodeReports(reports, e.layout, len(queries), p.idOffset)
		if err != nil {
			return nil, err
		}
		for qi := range queries {
			results[qi] = knn.MergeTopK(results[qi], TopK(decoded[qi], k), k)
		}
	}
	return results, nil
}

// ReportsDelivered returns how many report records the board has emitted so
// far; compared against Engine's n-per-query this measures the achieved
// bandwidth reduction.
func (e *ApproxEngine) ReportsDelivered() int { return e.board.ReportsEmitted() }
