package core

import (
	"context"
	"fmt"

	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
)

// ApproxEngine is the statistical-activation-reduction engine: the linear
// kNN design of Engine with every partition's macros grouped under local
// neighbor counters (§VI-C, Fig. 7). Each group of P macros reports only
// its nearest members per query, cutting report bandwidth by roughly P/k'
// while returning the exact top-k with high probability — the mostly-correct
// trade the paper quantifies in Table VI.
type ApproxEngine struct {
	board      *ap.Board
	layout     Layout
	capacity   int
	groupSize  int
	kPrime     int
	partitions []partition
	datasetLen int
}

// NewApproxEngine partitions ds into board images of reduction groups.
// groupSize is the paper's p (16 in Table VI); kPrime the local suppression
// threshold.
func NewApproxEngine(board *ap.Board, ds *bitvec.Dataset, opts EngineOptions, groupSize, kPrime int) (*ApproxEngine, error) {
	layout, err := ResolveLayout(ds.Dim(), opts.Layout)
	if err != nil {
		return nil, err
	}
	if groupSize <= 1 {
		return nil, fmt.Errorf("core: reduction group size %d must exceed 1", groupSize)
	}
	if kPrime <= 0 {
		return nil, fmt.Errorf("core: kPrime %d must be positive", kPrime)
	}
	capacity, err := ResolveCapacity(ds.Dim(), opts.Capacity)
	if err != nil {
		return nil, err
	}
	e := &ApproxEngine{
		board: board, layout: layout, capacity: capacity,
		groupSize: groupSize, kPrime: kPrime, datasetLen: ds.Len(),
	}
	e.partitions, err = compilePartitions(board.Config(), ds, capacity, "reduction",
		func(net *automata.Network, part *bitvec.Dataset) {
			for glo := 0; glo < part.Len(); glo += groupSize {
				ghi := glo + groupSize
				if ghi > part.Len() {
					ghi = part.Len()
				}
				if ghi-glo < 2 {
					// A trailing singleton group gets a plain macro: suppression
					// over one vector is meaningless.
					BuildMacro(net, part.At(glo), layout, int32(glo))
					continue
				}
				BuildReductionGroup(net, part.Slice(glo, ghi), layout, kPrime, int32(glo))
			}
		})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Partitions returns the number of board configurations.
func (e *ApproxEngine) Partitions() int { return len(e.partitions) }

// KPrime returns the local suppression threshold.
func (e *ApproxEngine) KPrime() int { return e.kPrime }

// Query answers the batch approximately: suppressed vectors never report, so
// the host sorts only the surviving candidates. Results are exact whenever
// each query's true top-k survives suppression (Table VI measures how often
// that fails).
func (e *ApproxEngine) Query(queries []bitvec.Vector, k int) ([][]knn.Neighbor, error) {
	batch, err := EncodeBatch(queries, e.layout)
	if err != nil {
		return nil, err
	}
	return e.QueryEncoded(context.Background(), batch, k)
}

// QueryEncoded answers a pre-encoded batch (see Engine.QueryEncoded).
func (e *ApproxEngine) QueryEncoded(ctx context.Context, batch *EncodedBatch, k int) ([][]knn.Neighbor, error) {
	return queryPartitions(ctx, e.board, e.partitions, e.layout, batch, k)
}

// ReportsDelivered returns how many report records the board has emitted so
// far; compared against Engine's n-per-query this measures the achieved
// bandwidth reduction.
func (e *ApproxEngine) ReportsDelivered() int { return e.board.ReportsEmitted() }
