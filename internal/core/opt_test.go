package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/stats"
)

// ---- Vector packing (§VI-A, Fig. 5) ----

// TestPackedMatchesPlain: the packed design must report the same cycles as
// per-vector macros for the same dataset and queries.
func TestPackedMatchesPlain(t *testing.T) {
	rng := stats.NewRNG(101)
	const dim, n = 20, 8
	ds := bitvec.RandomDataset(rng, n, dim)
	l := NewLayout(dim)
	queries := []bitvec.Vector{bitvec.Random(rng, dim), bitvec.Random(rng, dim)}
	stream := BuildStream(queries, l)

	plainNet := automata.NewNetwork()
	BuildLinear(plainNet, ds, l)
	plainReports := automata.MustSimulator(plainNet).Run(stream)

	packedNet := automata.NewNetwork()
	BuildPacked(packedNet, ds, l, 0)
	packedReports := automata.MustSimulator(packedNet).Run(stream)

	key := func(r automata.Report) [2]int { return [2]int{int(r.ReportID), r.Cycle} }
	plainSet := map[[2]int]bool{}
	for _, r := range plainReports {
		plainSet[key(r)] = true
	}
	if len(plainReports) != len(packedReports) {
		t.Fatalf("report counts: plain %d, packed %d", len(plainReports), len(packedReports))
	}
	for _, r := range packedReports {
		if !plainSet[key(r)] {
			t.Errorf("packed report %v not produced by plain design", r)
		}
	}
}

// Property: packing preserves kNN results end to end.
func TestPackedKNNProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		const dim, n, k = 12, 10, 3
		ds := bitvec.RandomDataset(rng, n, dim)
		q := bitvec.Random(rng, dim)
		l := NewLayout(dim)
		net := automata.NewNetwork()
		BuildPacked(net, ds, l, 0)
		reports := automata.MustSimulator(net).Run(BuildQueryStream(q, l))
		decoded, err := DecodeReports(reports, l, 1, 0)
		if err != nil {
			return false
		}
		got := TopK(decoded[0], k)
		want := knn.Linear(ds, q, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPackedSTECostMatchesActual(t *testing.T) {
	rng := stats.NewRNG(55)
	for _, c := range []struct{ dim, group int }{{16, 2}, {32, 4}, {64, 8}} {
		l := NewLayout(c.dim)
		ds := bitvec.RandomDataset(rng, c.group, c.dim)
		net := automata.NewNetwork()
		BuildPacked(net, ds, l, 0)
		if got, want := net.Stats().STEs, PackedSTECost(l, c.group); got != want {
			t.Errorf("d=%d g=%d: actual STEs %d != PackedSTECost %d", c.dim, c.group, got, want)
		}
	}
}

func TestPackingSavingsGrowWithGroup(t *testing.T) {
	l := NewLayout(64)
	prev := 0.0
	for _, g := range []int{1, 2, 4, 8} {
		s := PackingSavings(l, g)
		if s <= prev {
			t.Errorf("savings at group %d = %v, not increasing (prev %v)", g, s, prev)
		}
		prev = s
	}
	// Table VIII reports ~2.9-3.3x at group 4 for the paper's model; ours is
	// the same order.
	if s := PackingSavings(NewLayout(64), 4); s < 2 || s > 6 {
		t.Errorf("group-4 savings = %v, expected within [2,6]", s)
	}
}

// TestPackingRoutingPressure reproduces the §VI-A observation: the packed
// design's ladder has high fan-out, raising routing pressure versus the
// plain design. Each ladder state fans out to the next rung plus one
// collector per packed vector, so a group larger than the fan-out budget
// must register pressure.
func TestPackingRoutingPressure(t *testing.T) {
	rng := stats.NewRNG(66)
	const dim, n = 64, 24
	ds := bitvec.RandomDataset(rng, n, dim)
	l := NewLayout(dim)
	cfg := ap.Gen1()

	plainNet := automata.NewNetwork()
	BuildLinear(plainNet, ds, l)
	plain, err := ap.Compile(plainNet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	packedNet := automata.NewNetwork()
	BuildPacked(packedNet, ds, l, 0)
	packed, err := ap.Compile(packedNet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if packed.STEs >= plain.STEs {
		t.Errorf("packed STEs %d not below plain %d", packed.STEs, plain.STEs)
	}
	if packed.RoutingPressure <= plain.RoutingPressure {
		t.Errorf("packed routing pressure %d not above plain %d (paper §VI-A expects routing pressure)",
			packed.RoutingPressure, plain.RoutingPressure)
	}
}

// ---- Symbol stream multiplexing (§VI-B, Fig. 6) ----

func TestMuxMatchesCPU(t *testing.T) {
	rng := stats.NewRNG(2021)
	const dim, n, k, slices = 16, 12, 4, 7
	ds := bitvec.RandomDataset(rng, n, dim)
	l := NewLayout(dim)
	queries := make([]bitvec.Vector, 10) // more than one window, ragged tail
	for i := range queries {
		queries[i] = bitvec.Random(rng, dim)
	}
	net := automata.NewNetwork()
	BuildMux(net, ds, l, slices)
	sim := automata.MustSimulator(net)
	reports := sim.Run(BuildMuxStream(queries, l, slices))
	decoded, err := DecodeMuxReports(reports, l, slices, len(queries), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := knn.Batch(ds, queries, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		got := TopK(decoded[qi], k)
		if len(got) != len(want[qi]) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want[qi]))
		}
		for j := range want[qi] {
			if got[j] != want[qi][j] {
				t.Errorf("query %d rank %d: mux %v, cpu %v", qi, j, got[j], want[qi][j])
			}
		}
	}
}

func TestMuxStreamSharesWindows(t *testing.T) {
	l := NewLayout(8)
	rng := stats.NewRNG(3)
	queries := make([]bitvec.Vector, 14)
	for i := range queries {
		queries[i] = bitvec.Random(rng, 8)
	}
	stream := BuildMuxStream(queries, l, 7)
	if got, want := len(stream), 2*l.StreamLen(); got != want {
		t.Errorf("14 queries over 7 slices: stream %d symbols, want %d", got, want)
	}
	plain := BuildStream(queries, l)
	if len(plain) != 7*len(stream) {
		t.Errorf("mux should be 7x shorter: plain %d, mux %d", len(plain), len(stream))
	}
}

func TestMuxResourceCost(t *testing.T) {
	// Replicating 7 slices costs ~7x the STEs (§VI-B: infeasible on Gen 1).
	rng := stats.NewRNG(4)
	ds := bitvec.RandomDataset(rng, 4, 16)
	l := NewLayout(16)
	one := automata.NewNetwork()
	BuildMux(one, ds, l, 1)
	seven := automata.NewNetwork()
	BuildMux(seven, ds, l, 7)
	ratio := float64(seven.Stats().STEs) / float64(one.Stats().STEs)
	if ratio < 6.9 || ratio > 7.1 {
		t.Errorf("7-slice STE ratio = %v, want ~7", ratio)
	}
}

func TestMuxRejectsBadSlices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("slices=8 did not panic")
		}
	}()
	BuildMux(automata.NewNetwork(), bitvec.RandomDataset(stats.NewRNG(1), 2, 8), NewLayout(8), 8)
}

// ---- Statistical activation reduction (§VI-C, Fig. 7, Table VI) ----

// TestReductionAutomataMatchesModel validates SuppressFaithful against the
// cycle-accurate reduction automaton.
func TestReductionAutomataMatchesModel(t *testing.T) {
	rng := stats.NewRNG(31415)
	const dim, p, kPrime = 16, 8, 2
	l := NewLayout(dim)
	for trial := 0; trial < 25; trial++ {
		ds := bitvec.RandomDataset(rng, p, dim)
		q := bitvec.Random(rng, dim)
		net := automata.NewNetwork()
		BuildReductionGroup(net, ds, l, kPrime, 0)
		reports := automata.MustSimulator(net).Run(BuildQueryStream(q, l))
		delivered := map[int]bool{}
		for _, r := range reports {
			delivered[int(r.ReportID)] = true
		}
		ihds := make([]int, p)
		for i := range ihds {
			ihds[i] = dim - ds.Hamming(i, q)
		}
		want := SuppressGroup(ihds, kPrime, SuppressFaithful)
		for i := range want {
			if delivered[i] != want[i] {
				t.Errorf("trial %d vector %d (ihd %d): automata delivered=%v, model=%v (ihds %v)",
					trial, i, ihds[i], delivered[i], want[i], ihds)
			}
		}
	}
}

func TestSuppressGroupStrict(t *testing.T) {
	ihds := []int{10, 9, 9, 8, 7, 3}
	// kPrime=1: strict delivers nothing (the paper's 100%-incorrect row).
	got := SuppressGroup(ihds, 1, SuppressStrict)
	for i, d := range got {
		if d {
			t.Errorf("kPrime=1 strict delivered vector %d", i)
		}
	}
	// kPrime=2: top distinct level only (the single 10).
	got = SuppressGroup(ihds, 2, SuppressStrict)
	want := []bool{true, false, false, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("kPrime=2 strict vector %d = %v, want %v", i, got[i], want[i])
		}
	}
	// kPrime=3: levels 10 and 9 (ties delivered together).
	got = SuppressGroup(ihds, 3, SuppressStrict)
	want = []bool{true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("kPrime=3 strict vector %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSuppressGroupFaithfulSupersetOfStrict(t *testing.T) {
	f := func(seed uint64, rawK uint8) bool {
		rng := stats.NewRNG(seed)
		kPrime := int(rawK)%4 + 1
		ihds := make([]int, 16)
		for i := range ihds {
			ihds[i] = rng.Intn(20)
		}
		strict := SuppressGroup(ihds, kPrime, SuppressStrict)
		faithful := SuppressGroup(ihds, kPrime, SuppressFaithful)
		for i := range strict {
			if strict[i] && !faithful[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunReductionStrictKPrime1AlwaysIncorrect(t *testing.T) {
	res := RunReduction(ReductionExperiment{
		Dim: 64, N: 256, P: 16, K: 2, KPrime: 1, Runs: 20, Mode: SuppressStrict,
	}, stats.NewRNG(7))
	if res.IncorrectPercent != 100 {
		t.Errorf("strict kPrime=1 incorrect%% = %v, want 100 (Table VI row 1)", res.IncorrectPercent)
	}
}

func TestRunReductionFaithfulHighKPrimeCorrect(t *testing.T) {
	res := RunReduction(ReductionExperiment{
		Dim: 64, N: 256, P: 16, K: 2, KPrime: 4, Runs: 20, Mode: SuppressFaithful,
	}, stats.NewRNG(8))
	if res.Incorrect != 0 {
		t.Errorf("faithful kPrime=4 had %d incorrect runs, want 0", res.Incorrect)
	}
	if res.BandwidthFactor <= 1 {
		t.Errorf("bandwidth factor = %v, want > 1", res.BandwidthFactor)
	}
}

// ---- §VII-A counter increment extension ----

func TestMultiDimMacroMatchesCPU(t *testing.T) {
	rng := stats.NewRNG(999)
	for _, dim := range []int{7, 13, 21, 30} {
		l := NewMultiDimLayout(dim)
		ds := bitvec.RandomDataset(rng, 9, dim)
		q := bitvec.Random(rng, dim)
		net := automata.NewNetwork()
		for i := 0; i < ds.Len(); i++ {
			BuildMultiDimMacro(net, ds.At(i), l, int32(i))
		}
		sim := automata.MustSimulator(net)
		sim.ExtendedIncrement = true
		reports := sim.Run(BuildMultiDimStream([]bitvec.Vector{q}, l))
		decoded, err := DecodeMultiDimReports(reports, l, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := TopK(decoded[0], 3)
		want := knn.Linear(ds, q, 3)
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("dim %d rank %d: ext %v, cpu %v", dim, j, got[j], want[j])
			}
		}
	}
}

func TestMultiDimLatencyGain(t *testing.T) {
	l := NewMultiDimLayout(128)
	// Paper §VII-A: d + d/7 cycles vs 2d is 1.75x.
	if g := l.SpeedupOverPlain(); g < 1.7 || g > 1.8 {
		t.Errorf("speedup = %v, want ~1.75", g)
	}
	plainLen := NewLayout(128).StreamLen()
	if l.StreamLen() >= plainLen {
		t.Errorf("multi-dim stream %d not shorter than plain %d", l.StreamLen(), plainLen)
	}
}

func TestMultiDimRequiresExtension(t *testing.T) {
	// Without ExtendedIncrement the counter saturates at +1 per cycle and
	// distances come out wrong for a vector matching >1 dim per symbol.
	dim := 14
	l := NewMultiDimLayout(dim)
	v := bitvec.New(dim) // all zeros
	q := bitvec.New(dim) // identical: ihd = 14, two increments/cycle needed
	net := automata.NewNetwork()
	BuildMultiDimMacro(net, v, l, 0)
	sim := automata.MustSimulator(net)
	reports := sim.Run(BuildMultiDimStream([]bitvec.Vector{q}, l))
	if len(reports) == 1 && reports[0].Cycle == l.ReportCycle(dim) {
		t.Error("baseline counter reproduced extension timing; test cannot distinguish")
	}
	sim2 := automata.MustSimulator(net)
	sim2.ExtendedIncrement = true
	reports = sim2.Run(BuildMultiDimStream([]bitvec.Vector{q}, l))
	if len(reports) != 1 || reports[0].Cycle != l.ReportCycle(dim) {
		t.Errorf("extension reports = %v, want cycle %d", reports, l.ReportCycle(dim))
	}
}

// ---- §VII-B dynamic counter thresholds ----

func TestComparisonMacro(t *testing.T) {
	net := automata.NewNetwork()
	enA := net.AddSTE(automata.SingleClass('a'), automata.WithStart(automata.StartAll))
	enB := net.AddSTE(automata.SingleClass('b'), automata.WithStart(automata.StartAll))
	rst := net.AddSTE(automata.SingleClass('r'), automata.WithStart(automata.StartAll))
	BuildComparisonMacro(net, enA, enB, rst, 1)
	sim := automata.MustSimulator(net)
	// After "aab": countA=2, countB=1 -> A>B; out STE reports while the
	// comparison holds.
	reports := sim.Run([]byte("aab..."))
	if len(reports) == 0 {
		t.Fatal("A>B produced no reports")
	}
	// "abb": countA=1, countB=2 -> never A>B after B catches up... A leads
	// transiently after the first 'a'; after reset + "bb", A=0 <= B so no
	// report in the tail.
	sim2 := automata.MustSimulator(net)
	tail := sim2.Run([]byte("r.bb..."))
	for _, r := range tail {
		if r.Cycle >= 3 {
			t.Errorf("A<=B reported at cycle %d", r.Cycle)
		}
	}
}

func TestDynamicCounterValidation(t *testing.T) {
	net := automata.NewNetwork()
	ste := net.AddSTE(automata.AllClass())
	defer func() {
		if recover() == nil {
			t.Error("dynamic counter with STE source did not panic")
		}
	}()
	net.AddDynamicCounter(ste)
}

// ---- §VII-C STE decomposition ----

func TestDecompositionWidthsOfKNNMacro(t *testing.T) {
	// Every STE in the plain kNN macro uses at most one bit of the symbol:
	// the §VII-C observation that kNN wastes 8-input STEs as 1-input LUTs.
	net := automata.NewNetwork()
	BuildMacro(net, bitvec.Random(stats.NewRNG(1), 64), NewLayout(64), 0)
	rep := AnalyzeDecomposition(net)
	for w := 2; w <= 8; w++ {
		if rep.Widths[w] != 0 {
			t.Errorf("%d STEs require %d bits; kNN macro should need at most 1", rep.Widths[w], w)
		}
	}
	if rep.Widths[1] == 0 {
		t.Error("no 1-bit STEs found")
	}
}

func TestDecompositionSavingsNearLinear(t *testing.T) {
	// Table VII: savings approach the theoretical x because the Hamming
	// macro dominates. With every state at width <= 1, ours are exactly
	// linear up to x where 8-log2(x) >= 1, i.e. through x=128.
	net := automata.NewNetwork()
	BuildLinear(net, bitvec.RandomDataset(stats.NewRNG(2), 4, 64), NewLayout(64))
	rep := AnalyzeDecomposition(net)
	for _, x := range []int{1, 2, 4, 8, 16, 32} {
		s := rep.Savings(x)
		theoretical := float64(x)
		if s < 0.9*theoretical || s > theoretical+1e-9 {
			t.Errorf("savings(%d) = %v, want within [0.9x, x] of theoretical %v", x, s, theoretical)
		}
	}
}

func TestDecompositionSavingsBoundedByWideStates(t *testing.T) {
	// A design full of 8-bit-exact classes cannot be decomposed.
	net := automata.NewNetwork()
	for i := 0; i < 10; i++ {
		net.AddSTE(automata.SingleClass(byte(i)), automata.WithStart(automata.StartAll))
	}
	rep := AnalyzeDecomposition(net)
	if s := rep.Savings(4); s != 1 {
		t.Errorf("savings of undecomposable design = %v, want 1", s)
	}
}

func TestDecompositionRejectsBadFactor(t *testing.T) {
	rep := &DecompositionReport{}
	defer func() {
		if recover() == nil {
			t.Error("factor 3 did not panic")
		}
	}()
	rep.Savings(3)
}

// ---- §VII-D technology scaling ----

func TestTechnologyScaling(t *testing.T) {
	// Paper Table VIII: 50nm -> 28nm is 3.19x.
	if got := TechnologyScaling(28); got < 3.15 || got < 3.0 || got > 3.25 {
		t.Errorf("TechnologyScaling(28) = %v, want ~3.19", got)
	}
	if got := TechnologyScaling(50); got != 1 {
		t.Errorf("TechnologyScaling(50) = %v, want 1", got)
	}
}
