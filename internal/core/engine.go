package core

import (
	"context"

	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
)

// DefaultBoardCapacity returns the number of dataset vectors one board
// configuration holds, calibrated to the paper's §V-A compilation reports:
// one configuration encodes up to 128 Kb of data — 1024 vectors at up to 128
// dimensions, 512 vectors at 256 dimensions (kNN-WordEmbed is additionally
// PCIe-limited to 1024).
func DefaultBoardCapacity(dim int) int {
	if dim <= 128 {
		return 1024
	}
	return 512
}

// EngineOptions configures NewEngine.
type EngineOptions struct {
	// Layout overrides the default monotonic layout.
	Layout *Layout
	// Capacity overrides vectors per board configuration (0 = paper default).
	Capacity int
}

// partition is one precompiled board image (§III-C: "we assume these
// additional configurations are precompiled into a set of board images").
type partition struct {
	net       *automata.Network
	placement *ap.Placement
	idOffset  int
	size      int
}

// Engine executes exact Hamming kNN on a simulated AP board, scaling past
// the board capacity with partial reconfiguration: queries are streamed
// against each precompiled dataset partition in turn and the host merges the
// per-partition top-k results (§III-C).
type Engine struct {
	board      *ap.Board
	layout     Layout
	capacity   int
	partitions []partition
	datasetLen int
}

// NewEngine partitions ds into board images, builds the kNN automata for
// each, and precompiles their placements.
func NewEngine(board *ap.Board, ds *bitvec.Dataset, opts EngineOptions) (*Engine, error) {
	layout, err := ResolveLayout(ds.Dim(), opts.Layout)
	if err != nil {
		return nil, err
	}
	capacity, err := ResolveCapacity(ds.Dim(), opts.Capacity)
	if err != nil {
		return nil, err
	}
	e := &Engine{board: board, layout: layout, capacity: capacity, datasetLen: ds.Len()}
	e.partitions, err = compilePartitions(board.Config(), ds, capacity, "linear",
		func(net *automata.Network, part *bitvec.Dataset) {
			BuildLinear(net, part, layout)
		})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Layout returns the engine's stream layout.
func (e *Engine) Layout() Layout { return e.layout }

// Partitions returns the number of board configurations the dataset needs.
func (e *Engine) Partitions() int { return len(e.partitions) }

// Board returns the underlying board (for modeled-time queries).
func (e *Engine) Board() *ap.Board { return e.board }

// Query answers a batch of queries with the k nearest neighbors each,
// reconfiguring the board once per dataset partition and merging results on
// the host. Results are (distance, ID)-sorted.
func (e *Engine) Query(queries []bitvec.Vector, k int) ([][]knn.Neighbor, error) {
	batch, err := EncodeBatch(queries, e.layout)
	if err != nil {
		return nil, err
	}
	return e.QueryEncoded(context.Background(), batch, k)
}

// QueryEncoded answers a pre-encoded batch, letting pipelined drivers encode
// the stream once and reuse it across boards and partitions. Cancellation of
// ctx aborts the configuration sweep at the next partition boundary.
func (e *Engine) QueryEncoded(ctx context.Context, batch *EncodedBatch, k int) ([][]knn.Neighbor, error) {
	return queryPartitions(ctx, e.board, e.partitions, e.layout, batch, k)
}
