package core

import (
	"fmt"

	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
)

// DefaultBoardCapacity returns the number of dataset vectors one board
// configuration holds, calibrated to the paper's §V-A compilation reports:
// one configuration encodes up to 128 Kb of data — 1024 vectors at up to 128
// dimensions, 512 vectors at 256 dimensions (kNN-WordEmbed is additionally
// PCIe-limited to 1024).
func DefaultBoardCapacity(dim int) int {
	if dim <= 128 {
		return 1024
	}
	return 512
}

// EngineOptions configures NewEngine.
type EngineOptions struct {
	// Layout overrides the default monotonic layout.
	Layout *Layout
	// Capacity overrides vectors per board configuration (0 = paper default).
	Capacity int
}

// partition is one precompiled board image (§III-C: "we assume these
// additional configurations are precompiled into a set of board images").
type partition struct {
	net       *automata.Network
	placement *ap.Placement
	idOffset  int
	size      int
}

// Engine executes exact Hamming kNN on a simulated AP board, scaling past
// the board capacity with partial reconfiguration: queries are streamed
// against each precompiled dataset partition in turn and the host merges the
// per-partition top-k results (§III-C).
type Engine struct {
	board      *ap.Board
	layout     Layout
	capacity   int
	partitions []partition
	datasetLen int
}

// NewEngine partitions ds into board images, builds the kNN automata for
// each, and precompiles their placements.
func NewEngine(board *ap.Board, ds *bitvec.Dataset, opts EngineOptions) (*Engine, error) {
	layout := NewLayout(ds.Dim())
	if opts.Layout != nil {
		layout = *opts.Layout
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	capacity := opts.Capacity
	if capacity == 0 {
		capacity = DefaultBoardCapacity(ds.Dim())
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("core: non-positive board capacity %d", capacity)
	}
	e := &Engine{board: board, layout: layout, capacity: capacity, datasetLen: ds.Len()}
	for lo := 0; lo < ds.Len(); lo += capacity {
		hi := lo + capacity
		if hi > ds.Len() {
			hi = ds.Len()
		}
		net := automata.NewNetwork()
		BuildLinear(net, ds.Slice(lo, hi), layout)
		if err := net.Validate(); err != nil {
			return nil, fmt.Errorf("core: partition [%d,%d): %w", lo, hi, err)
		}
		placement, err := ap.Compile(net, board.Config())
		if err != nil {
			return nil, fmt.Errorf("core: partition [%d,%d): %w", lo, hi, err)
		}
		e.partitions = append(e.partitions, partition{
			net: net, placement: placement, idOffset: lo, size: hi - lo,
		})
	}
	return e, nil
}

// Layout returns the engine's stream layout.
func (e *Engine) Layout() Layout { return e.layout }

// Partitions returns the number of board configurations the dataset needs.
func (e *Engine) Partitions() int { return len(e.partitions) }

// Board returns the underlying board (for modeled-time queries).
func (e *Engine) Board() *ap.Board { return e.board }

// Query answers a batch of queries with the k nearest neighbors each,
// reconfiguring the board once per dataset partition and merging results on
// the host. Results are (distance, ID)-sorted.
func (e *Engine) Query(queries []bitvec.Vector, k int) ([][]knn.Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	for i, q := range queries {
		if q.Dim() != e.layout.Dim {
			return nil, fmt.Errorf("core: query %d has dim %d, want %d", i, q.Dim(), e.layout.Dim)
		}
	}
	results := make([][]knn.Neighbor, len(queries))
	stream := BuildStream(queries, e.layout)
	for _, p := range e.partitions {
		if err := e.board.ConfigurePlaced(p.net, p.placement); err != nil {
			return nil, err
		}
		reports := e.board.Stream(stream)
		decoded, err := DecodeReports(reports, e.layout, len(queries), p.idOffset)
		if err != nil {
			return nil, err
		}
		for qi := range queries {
			results[qi] = knn.MergeTopK(results[qi], TopK(decoded[qi], k), k)
		}
	}
	return results, nil
}
