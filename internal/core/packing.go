package core

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/bitvec"
)

// PackedGroup is the §VI-A vector-packing design (Fig. 5): several Hamming
// macros overlaid on one shared "vector ladder". The ladder carries, per
// dimension, one state for query bit 0 and one for query bit 1; each packed
// vector taps the ladder states matching its encoded bits through its own
// collector tree, counter and reporting state. The guard, delay chain, sort
// state and EOF state are also shared.
type PackedGroup struct {
	Guard automata.ElementID
	// Ladder[i] holds the bit-0 and bit-1 states of dimension i.
	Ladder    [][2]automata.ElementID
	Delays    []automata.ElementID
	Sort      automata.ElementID
	EOF       automata.ElementID
	VectorIDs []int32
	Counters  []automata.ElementID
	Reports   []automata.ElementID
}

// BuildPacked appends one packed group encoding all vectors of ds to net,
// with report IDs baseID, baseID+1, ... in dataset order. The timing is
// identical to the plain macro's, so streams and decoding are unchanged.
func BuildPacked(net *automata.Network, ds *bitvec.Dataset, l Layout, baseID int32) *PackedGroup {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if ds.Dim() != l.Dim {
		panic(fmt.Sprintf("core: dataset dim %d != layout dim %d", ds.Dim(), l.Dim))
	}
	if ds.Len() == 0 {
		panic("core: BuildPacked on empty dataset")
	}
	d := l.Dim
	g := &PackedGroup{}
	g.Guard = net.AddSTE(classGuard,
		automata.WithStart(automata.StartAll), automata.WithName("pack.guard"))

	// Shared ladder: exactly one state per rung fires each data cycle — the
	// one matching the query bit — so every packed vector observes the query
	// through the same 2d states.
	prev := []automata.ElementID{g.Guard}
	for i := 0; i < d; i++ {
		zero := net.AddSTE(classBit0, automata.WithName(fmt.Sprintf("pack.l%d_0", i)))
		one := net.AddSTE(classBit1, automata.WithName(fmt.Sprintf("pack.l%d_1", i)))
		for _, p := range prev {
			net.Connect(p, zero)
			net.Connect(p, one)
		}
		g.Ladder = append(g.Ladder, [2]automata.ElementID{zero, one})
		prev = []automata.ElementID{zero, one}
	}

	// Shared sorting tail.
	tail := prev
	for j := 0; j < l.delaySlack(); j++ {
		dly := net.AddSTE(automata.AllClass(), automata.WithName(fmt.Sprintf("pack.dly%d", j)))
		for _, p := range tail {
			net.Connect(p, dly)
		}
		g.Delays = append(g.Delays, dly)
		tail = []automata.ElementID{dly}
	}
	g.Sort = net.AddSTE(classPad, automata.WithName("pack.sort"))
	for _, p := range tail {
		net.Connect(p, g.Sort)
	}
	net.Connect(g.Sort, g.Sort)
	g.EOF = net.AddSTE(classEOF, automata.WithName("pack.eof"))
	net.Connect(g.Sort, g.EOF)

	// Per-vector collectors, counter, report.
	depth := l.CollectorDepth()
	fanIn := l.CollectorFanIn
	if l.PaperExact {
		fanIn = d
	}
	for vi := 0; vi < ds.Len(); vi++ {
		v := ds.At(vi)
		id := baseID + int32(vi)
		counter := net.AddCounter(d, automata.CounterPulse,
			automata.WithName(fmt.Sprintf("pack.v%d.ihd", id)))
		level := make([]automata.ElementID, d)
		for i := 0; i < d; i++ {
			if v.Bit(i) {
				level[i] = g.Ladder[i][1]
			} else {
				level[i] = g.Ladder[i][0]
			}
		}
		for lvl := 0; lvl < depth; lvl++ {
			var next []automata.ElementID
			for lo := 0; lo < len(level); lo += fanIn {
				hi := lo + fanIn
				if hi > len(level) {
					hi = len(level)
				}
				col := net.AddSTE(automata.AllClass(),
					automata.WithName(fmt.Sprintf("pack.v%d.col%d_%d", id, lvl, lo/fanIn)))
				for _, src := range level[lo:hi] {
					net.Connect(src, col)
				}
				next = append(next, col)
			}
			level = next
		}
		if len(level) != 1 {
			panic(fmt.Sprintf("core: packed collector tree reduced to %d roots", len(level)))
		}
		net.ConnectCount(level[0], counter)
		net.ConnectCount(g.Sort, counter)
		net.ConnectReset(g.EOF, counter)
		report := net.AddSTE(automata.AllClass(),
			automata.WithReport(id), automata.WithName(fmt.Sprintf("pack.v%d.rep", id)))
		net.Connect(counter, report)

		g.VectorIDs = append(g.VectorIDs, id)
		g.Counters = append(g.Counters, counter)
		g.Reports = append(g.Reports, report)
	}
	return g
}

// PackedSTECost returns the analytical STE cost of packing group vectors
// onto one ladder (1 NFA state ~ 1 STE, the §VII-D model).
func PackedSTECost(l Layout, group int) int {
	d := l.Dim
	collectors := 0
	level := d
	fanIn := l.CollectorFanIn
	if l.PaperExact {
		fanIn = d
	}
	for lvl := 0; lvl < l.CollectorDepth(); lvl++ {
		level = (level + fanIn - 1) / fanIn
		collectors += level
	}
	shared := 1 + 2*d + l.delaySlack() + 2 // guard + ladder + delays + sort + eof
	perVector := collectors + 1            // collector tree + report state
	return shared + group*perVector
}

// PackingSavings returns the analytical resource-saving factor of packing
// vectors in groups of the given size versus unpacked macros, the quantity
// Table VIII reports per workload (2.93x / 3.28x / 3.31x for groups of 4).
func PackingSavings(l Layout, group int) float64 {
	if group <= 0 {
		panic(fmt.Sprintf("core: non-positive pack group %d", group))
	}
	return float64(group*MacroSTECost(l)) / float64(PackedSTECost(l, group))
}
