package cluster

import (
	"context"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// stitchTimeout bounds the per-replica trace fetches one stitched answer
// may fan out.
const stitchTimeout = 2 * time.Second

// handleDebugTraces serves GET /v1/debug/traces on the router. The same
// query surface as the shard endpoint (?trace_id=, ?class=, ?n=), plus
// stitching: each router-side record's scatter-leg spans carry the span ID
// and replica address the leg was sent with, so the router fetches the
// shard-side tree by trace ID and grafts it under the exact leg whose span
// ID the shard recorded as its parent. Stitching is on for ?trace_id=
// lookups and off for class listings unless ?stitch=1 — a listing would
// fan out one fetch per record per leg.
func (r *Router) handleDebugTraces(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		serve.WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := req.URL.Query()
	resp := serve.DebugTracesResponse{
		Node:     r.cfg.NodeID,
		Depth:    r.rec.Depth(),
		Recorded: r.rec.Recorded(),
		Classes:  r.rec.ClassCounts(),
	}
	var stitch bool
	if id := obs.SanitizeRequestID(q.Get("trace_id")); id != "" {
		resp.Traces = r.rec.ByTraceID(id)
		stitch = q.Get("stitch") != "0"
	} else {
		class := q.Get("class")
		if class == "" {
			class = obs.ClassRecent
		}
		if !validTraceClass(class) {
			serve.WriteError(w, http.StatusBadRequest,
				"unknown trace class "+strconv.Quote(class)+": one of "+strings.Join(obs.Classes, "|"))
			return
		}
		n, _ := strconv.Atoi(q.Get("n"))
		resp.Traces = r.rec.Class(class, n)
		stitch = q.Get("stitch") == "1"
	}
	if stitch {
		stitched := make([]*obs.TraceRecord, len(resp.Traces))
		var wg sync.WaitGroup
		for i, rec := range resp.Traces {
			wg.Add(1)
			go func(i int, rec *obs.TraceRecord) {
				defer wg.Done()
				stitched[i] = r.stitch(req.Context(), rec)
			}(i, rec)
		}
		wg.Wait()
		resp.Traces = stitched
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

func validTraceClass(class string) bool {
	for _, c := range obs.Classes {
		if c == class {
			return true
		}
	}
	return false
}

// stitch returns a copy of rec with every scatter leg's shard-side tree
// grafted under it. Legs whose replica cannot answer (or no longer retains
// the trace) keep a stitch_error attr instead of failing the lookup — the
// router-side tree alone is still evidence.
func (r *Router) stitch(ctx context.Context, rec *obs.TraceRecord) *obs.TraceRecord {
	out := *rec
	out.Root = rec.Root.Clone()
	// Group this trace's legs by replica address: one fetch per replica
	// answers every leg (hedge siblings included) it served.
	byAddr := make(map[string][]*obs.WireSpan)
	for _, leg := range out.Root.Children {
		if leg.Attr("span_id") != "" && leg.Attr("replica") != "" {
			byAddr[leg.Attr("replica")] = append(byAddr[leg.Attr("replica")], leg)
		}
	}
	if len(byAddr) == 0 {
		return &out
	}
	clients := r.clientsByAddr()
	var wg sync.WaitGroup
	var mu sync.Mutex // guards the fetched map
	fetched := make(map[string][]*obs.TraceRecord, len(byAddr))
	errs := make(map[string]string, len(byAddr))
	for addr := range byAddr {
		c, ok := clients[addr]
		if !ok {
			errs[addr] = "replica not in manifest"
			continue
		}
		wg.Add(1)
		go func(addr string, c *serve.Client) {
			defer wg.Done()
			fctx, cancel := context.WithTimeout(ctx, stitchTimeout)
			defer cancel()
			dt, err := c.DebugTraces(fctx, url.Values{"trace_id": {rec.TraceID}})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[addr] = err.Error()
				return
			}
			fetched[addr] = dt.Traces
		}(addr, c)
	}
	wg.Wait()
	for addr, legs := range byAddr {
		for _, leg := range legs {
			if msg, bad := errs[addr]; bad {
				leg.Attrs["stitch_error"] = msg
				continue
			}
			// The shard recorded our leg's span ID as its root's parent —
			// that is the exact attempt (hedges have distinct IDs) whose
			// answer this subtree describes.
			var hit *obs.WireSpan
			for _, srec := range fetched[addr] {
				if srec.Root.Attr("parent_span_id") == leg.Attr("span_id") {
					hit = srec.Root
					break
				}
			}
			if hit == nil {
				leg.Attrs["stitch_error"] = "shard recorder no longer retains this trace"
				continue
			}
			leg.Children = append(leg.Children, hit)
		}
	}
	return &out
}

// clientsByAddr indexes every replica's client by its address.
func (r *Router) clientsByAddr() map[string]*serve.Client {
	out := make(map[string]*serve.Client)
	for _, set := range r.sets {
		for _, rep := range set.replicas {
			out[rep.addr] = rep.client
		}
	}
	return out
}
