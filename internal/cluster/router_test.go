package cluster_test

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	apknn "repro"
	"repro/internal/cluster"
	"repro/internal/serve"
)

// TestHedgedReadWinsOverSlowReplica pins the hedging contract: a primary
// that stalls past the hedge delay loses to a duplicate request on the
// second replica, the client sees a fast, correct answer, and the loser is
// canceled rather than waited out.
func TestHedgedReadWinsOverSlowReplica(t *testing.T) {
	ds := apknn.RandomDataset(21, 400, 32)
	var stalls atomic.Int64
	tc := bootCluster(t, ds, 1, 2, false,
		cluster.Config{HedgeDelay: 10 * time.Millisecond},
		func(shard, rep int, h http.Handler) http.Handler {
			if rep != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/search" {
					stalls.Add(1)
					select {
					case <-time.After(5 * time.Second):
					case <-r.Context().Done():
						return
					}
				}
				h.ServeHTTP(w, r)
			})
		})
	q := apknn.RandomQueries(22, 1, 32)[0]
	exact := apknn.ExactSearch(ds, []apknn.Vector{q}, 3, 1)[0]

	// Latency-aware selection starts both replicas unscored, so the first
	// primary pick is pseudo-random — but once the fast replica has a
	// score, the still-unscored stalled one sorts ahead of it and must
	// lead. By the second request at the latest, the answer can only have
	// come from the hedge.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 4 && stalls.Load() == 0; i++ {
		start := time.Now()
		resp, err := tc.client.Search(ctx, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("hedged search took %v; the stalled primary was waited out", elapsed)
		}
		got := serve.Neighbors(resp.Neighbors)
		for j := range exact {
			if got[j] != exact[j] {
				t.Fatalf("rank %d: %+v, want %+v", j, got[j], exact[j])
			}
		}
	}
	if stalls.Load() == 0 {
		t.Fatal("the stalled replica never became primary; unscored replicas should lead")
	}
	st := tc.router.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("Hedges=%d HedgeWins=%d, want both > 0", st.Hedges, st.HedgeWins)
	}
}

// TestFailoverOnDeadReplica kills one of two replicas and asserts the
// router keeps answering (failing over when the dead one is picked as
// primary), ejects it from the healthy set, and reports a degraded-free
// /healthz while one replica survives.
func TestFailoverOnDeadReplica(t *testing.T) {
	ds := apknn.RandomDataset(31, 400, 32)
	tc := bootCluster(t, ds, 1, 2, false, cluster.Config{}, nil)
	q := apknn.RandomQueries(32, 1, 32)[0]
	exact := apknn.ExactSearch(ds, []apknn.Vector{q}, 4, 1)[0]

	tc.nodes[0][1].ts.Close() // kill replica b; while unscored it still leads
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		resp, err := tc.client.Search(ctx, q, 4)
		if err != nil {
			t.Fatalf("search %d after replica death: %v", i, err)
		}
		got := serve.Neighbors(resp.Neighbors)
		for j := range exact {
			if got[j] != exact[j] {
				t.Fatalf("search %d rank %d: %+v, want %+v", i, j, got[j], exact[j])
			}
		}
	}
	st := tc.router.Stats()
	if st.Failovers == 0 {
		t.Fatalf("Failovers = 0, want > 0 (the dead replica was primary for ~half the picks)")
	}
	if st.Ejected == 0 {
		t.Fatalf("Ejected = 0, want > 0")
	}
	tc.router.Probe(ctx)
	if st = tc.router.Stats(); st.Healthy != 1 {
		t.Fatalf("Healthy = %d after probe, want 1", st.Healthy)
	}
	// One healthy replica still serves the shard: /healthz stays 200.
	if _, err := tc.client.Health(ctx); err != nil {
		t.Fatalf("healthz with one live replica: %v", err)
	}
}

// TestProbeEjectsAndReadmits drives the health lifecycle explicitly: a
// replica whose /healthz starts failing is ejected on the next probe and
// readmitted once it recovers, with both transitions counted exactly once.
func TestProbeEjectsAndReadmits(t *testing.T) {
	ds := apknn.RandomDataset(41, 200, 32)
	var sick atomic.Bool
	tc := bootCluster(t, ds, 1, 2, false, cluster.Config{},
		func(shard, rep int, h http.Handler) http.Handler {
			if rep != 1 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/healthz" && sick.Load() {
					http.Error(w, `{"error":"sick"}`, http.StatusServiceUnavailable)
					return
				}
				h.ServeHTTP(w, r)
			})
		})
	ctx := context.Background()
	tc.router.Probe(ctx)
	if st := tc.router.Stats(); st.Healthy != 2 || st.Ejected != 0 {
		t.Fatalf("after clean probe: Healthy=%d Ejected=%d, want 2/0", st.Healthy, st.Ejected)
	}
	sick.Store(true)
	tc.router.Probe(ctx)
	tc.router.Probe(ctx) // steady-state: no double-counting
	if st := tc.router.Stats(); st.Healthy != 1 || st.Ejected != 1 {
		t.Fatalf("after sick probes: Healthy=%d Ejected=%d, want 1/1", st.Healthy, st.Ejected)
	}
	sick.Store(false)
	tc.router.Probe(ctx)
	tc.router.Probe(ctx)
	if st := tc.router.Stats(); st.Healthy != 2 || st.Readmitted != 1 {
		t.Fatalf("after recovery probes: Healthy=%d Readmitted=%d, want 2/1", st.Healthy, st.Readmitted)
	}
}

// TestMutationRouting pins the write path: inserts land on the tail shard's
// every replica and come back with a union-global ID, deletes route to the
// owning shard by ID range, and a dead replica degrades a write to
// best-effort with the failure reported per replica instead of failing the
// request.
func TestMutationRouting(t *testing.T) {
	ds := apknn.RandomDataset(51, 400, 32)
	tc := bootCluster(t, ds, 2, 2, true, cluster.Config{}, nil)
	ctx := context.Background()
	v := apknn.RandomQueries(52, 1, 32)[0]

	var ins cluster.InsertResponse
	if err := tc.client.Do(ctx, http.MethodPost, "/v1/insert",
		serve.InsertRequest{Vector: v.String()}, &ins); err != nil {
		t.Fatal(err)
	}
	if ins.Shard != 1 || ins.ID != 400 || ins.Acked != 2 || len(ins.ReplicaErrors) != 0 {
		t.Fatalf("insert = %+v, want shard 1, global ID 400, 2 acks", ins)
	}
	// The insert is immediately searchable through the router at distance 0
	// under its global ID.
	resp, err := tc.client.Search(ctx, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) != 1 || resp.Neighbors[0].ID != 400 || resp.Neighbors[0].Dist != 0 {
		t.Fatalf("search after insert = %+v, want ID 400 at distance 0", resp.Neighbors)
	}

	var del cluster.DeleteResponse
	if err := tc.client.Do(ctx, http.MethodPost, "/v1/delete",
		serve.DeleteRequest{ID: 400}, &del); err != nil {
		t.Fatal(err)
	}
	if del.Shard != 1 || !del.Deleted || del.Acked != 2 {
		t.Fatalf("delete = %+v, want shard 1, deleted, 2 acks", del)
	}
	if resp, err = tc.client.Search(ctx, v, 1); err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) == 1 && resp.Neighbors[0].ID == 400 {
		t.Fatal("deleted vector still returned through the router")
	}

	// A shard-0 global ID routes to shard 0 and tombstones there.
	if err := tc.client.Do(ctx, http.MethodPost, "/v1/delete",
		serve.DeleteRequest{ID: 3}, &del); err != nil {
		t.Fatal(err)
	}
	if del.Shard != 0 || !del.Deleted || del.Acked != 2 {
		t.Fatalf("delete ID 3 = %+v, want shard 0, deleted, 2 acks", del)
	}
	// Double delete: every replica answers 404, so the router does too.
	err = tc.client.Do(ctx, http.MethodPost, "/v1/delete", serve.DeleteRequest{ID: 3}, &del)
	var apiErr *serve.APIError
	if err == nil || !asAPIError(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("double delete err = %v, want APIError 404", err)
	}
	// A negative ID belongs to no shard.
	err = tc.client.Do(ctx, http.MethodPost, "/v1/delete", serve.DeleteRequest{ID: -5}, &del)
	if err == nil || !asAPIError(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unowned delete err = %v, want APIError 404", err)
	}

	// Kill one tail-shard replica: the write degrades to best-effort — one
	// ack, one reported replica error, still HTTP 200.
	tc.nodes[1][1].ts.Close()
	if err := tc.client.Do(ctx, http.MethodPost, "/v1/insert",
		serve.InsertRequest{Vector: v.String()}, &ins); err != nil {
		t.Fatal(err)
	}
	if ins.Acked != 1 || len(ins.ReplicaErrors) != 1 {
		t.Fatalf("degraded insert = %+v, want 1 ack and 1 replica error", ins)
	}
	if ins.ReplicaErrors[0].Addr != tc.nodes[1][1].ts.URL {
		t.Fatalf("replica error attributed to %s, want %s", ins.ReplicaErrors[0].Addr, tc.nodes[1][1].ts.URL)
	}
}

// TestRouterRetriesSaturatedShard wires the DoRetry satellite end to end: a
// replica that answers 429 (with an HTTP-date Retry-After, the form the
// client must also parse) on the first attempt is retried after backoff
// rather than failed or failed-over — there is no second replica to hide
// behind here.
func TestRouterRetriesSaturatedShard(t *testing.T) {
	ds := apknn.RandomDataset(61, 300, 32)
	var served atomic.Int64
	tc := bootCluster(t, ds, 1, 1, false,
		cluster.Config{Retry: serve.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}},
		func(shard, rep int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/search" && served.Add(1) == 1 {
					w.Header().Set("Retry-After", time.Now().UTC().Add(-time.Hour).Format(http.TimeFormat))
					http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
					return
				}
				h.ServeHTTP(w, r)
			})
		})
	q := apknn.RandomQueries(62, 1, 32)[0]
	exact := apknn.ExactSearch(ds, []apknn.Vector{q}, 2, 1)[0]
	resp, err := tc.client.Search(context.Background(), q, 2)
	if err != nil {
		t.Fatalf("search through a once-saturated shard: %v", err)
	}
	got := serve.Neighbors(resp.Neighbors)
	for j := range exact {
		if got[j] != exact[j] {
			t.Fatalf("rank %d: %+v, want %+v", j, got[j], exact[j])
		}
	}
	if st := tc.router.Stats(); st.Retries == 0 {
		t.Fatalf("Retries = 0, want > 0")
	}
}

// TestClusterStatsAggregation checks /v1/stats on the router: counters,
// per-node attribution via each node's identity block, and error lines for
// unreachable nodes instead of a failed aggregation.
func TestClusterStatsAggregation(t *testing.T) {
	ds := apknn.RandomDataset(71, 400, 32)
	tc := bootCluster(t, ds, 2, 1, false, cluster.Config{}, nil)
	ctx := context.Background()
	queries := apknn.RandomQueries(72, 3, 32)
	for _, q := range queries {
		if _, err := tc.client.Search(ctx, q, 2); err != nil {
			t.Fatal(err)
		}
	}
	var st cluster.StatsResponse
	if err := tc.client.Do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		t.Fatal(err)
	}
	c := st.Cluster
	if c.Shards != 2 || c.Replicas != 2 || c.Healthy != 2 {
		t.Fatalf("topology block = %+v, want 2 shards, 2 replicas, 2 healthy", c)
	}
	if c.Searches != 3 || c.ShardCalls != 6 {
		t.Fatalf("Searches=%d ShardCalls=%d, want 3 and 6", c.Searches, c.ShardCalls)
	}
	if len(c.PerNode) != 2 {
		t.Fatalf("PerNode has %d lines, want 2", len(c.PerNode))
	}
	var queriesSeen int64
	for i, node := range c.PerNode {
		if node.Error != "" {
			t.Fatalf("node %d reported error %q", i, node.Error)
		}
		if node.NodeID == "" || node.Vectors != 200 || node.Base != i*200 {
			t.Fatalf("node %d = %+v, want an ID, 200 vectors, base %d", i, node, i*200)
		}
		queriesSeen += node.Queries
	}
	if queriesSeen != 6 {
		t.Fatalf("per-node queries sum to %d, want 6 (3 searches x 2 shards)", queriesSeen)
	}

	// An unreachable node becomes an error line, not a failed aggregation.
	tc.nodes[1][0].ts.Close()
	if err := tc.client.Do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		t.Fatal(err)
	}
	errLines := 0
	for _, node := range st.Cluster.PerNode {
		if node.Error != "" {
			errLines++
		}
	}
	if errLines != 1 {
		t.Fatalf("%d error lines after killing a node, want 1", errLines)
	}
	// And /healthz degrades: shard 1 has no replica left.
	tc.router.Probe(ctx)
	_, err := tc.client.Health(ctx)
	var apiErr *serve.APIError
	if err == nil || !asAPIError(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a dead shard: err = %v, want APIError 503", err)
	}
}

// TestManifest covers the static-topology layer: validation, range
// ownership, the compact -shards flag form, and the JSON round-trip.
func TestManifest(t *testing.T) {
	m := &cluster.Manifest{Shards: []cluster.Shard{
		{Base: 0, Replicas: []string{"http://a:1"}},
		{Base: 100, Replicas: []string{"http://b:1", "http://b:2"}},
		{Base: 250, Replicas: []string{"http://c:1"}},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct{ id, want int }{
		{-1, -1}, {0, 0}, {99, 0}, {100, 1}, {249, 1}, {250, 2}, {1 << 30, 2},
	} {
		if got := m.Owner(tt.id); got != tt.want {
			t.Errorf("Owner(%d) = %d, want %d", tt.id, got, tt.want)
		}
	}
	for name, bad := range map[string]*cluster.Manifest{
		"no shards":       {},
		"no replicas":     {Shards: []cluster.Shard{{Base: 0}}},
		"empty replica":   {Shards: []cluster.Shard{{Base: 0, Replicas: []string{""}}}},
		"nonzero base 0":  {Shards: []cluster.Shard{{Base: 5, Replicas: []string{"http://a:1"}}}},
		"non-ascending":   {Shards: []cluster.Shard{{Base: 0, Replicas: []string{"http://a:1"}}, {Base: 0, Replicas: []string{"http://b:1"}}}},
		"descending base": {Shards: []cluster.Shard{{Base: 0, Replicas: []string{"http://a:1"}}, {Base: 10, Replicas: []string{"http://b:1"}}, {Base: 5, Replicas: []string{"http://c:1"}}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted manifest with %s", name)
		}
	}

	parsed, err := cluster.ParseTopology(" h1:9001 , h2:9001 ; https://h3:9001 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Shards) != 2 ||
		parsed.Shards[0].Replicas[0] != "http://h1:9001" ||
		parsed.Shards[0].Replicas[1] != "http://h2:9001" ||
		parsed.Shards[1].Replicas[0] != "https://h3:9001" {
		t.Fatalf("ParseTopology = %+v", parsed)
	}
	// Unresolved bases must not validate: routing with them would send
	// every delete to shard 0.
	if err := parsed.Validate(); err == nil {
		t.Fatal("Validate accepted a topology with unresolved bases")
	}
	for _, bad := range []string{"", ";", "a:1,;b:1", " ; "} {
		if _, err := cluster.ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) succeeded, want error", bad)
		}
	}

	path := t.TempDir() + "/manifest.json"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := cluster.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Shards) != 3 || back.Shards[1].Base != 100 || back.Shards[1].Replicas[1] != "http://b:2" {
		t.Fatalf("manifest round-trip = %+v", back)
	}
}

// TestResolveBases boots two real nodes and lets the probe derive the
// global-ID layout from their /v1/stats identity blocks.
func TestResolveBases(t *testing.T) {
	ds := apknn.RandomDataset(81, 500, 32)
	// Boot a throwaway cluster just for its nodes; the probe target is the
	// manifest, not this router.
	tc := bootCluster(t, ds, 2, 1, false, cluster.Config{}, nil)
	m := &cluster.Manifest{Shards: []cluster.Shard{
		{Base: -1, Replicas: []string{tc.nodes[0][0].ts.URL}},
		{Base: -2, Replicas: []string{tc.nodes[1][0].ts.URL}},
	}}
	if err := m.ResolveBases(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if m.Shards[0].Base != 0 || m.Shards[1].Base != 250 {
		t.Fatalf("resolved bases = %d, %d; want 0, 250", m.Shards[0].Base, m.Shards[1].Base)
	}
	if m.Dim != 32 {
		t.Fatalf("resolved dim = %d, want 32", m.Dim)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestResolveBasesAfterDeletes pins the ID-space rule: a live node that
// has seen deletes reports fewer vectors than its local ID range spans,
// and the probe must size the shard range from the ID-space high-water
// mark — a base derived from the live count would make shard 0's highest
// local IDs collide with shard 1's range.
func TestResolveBasesAfterDeletes(t *testing.T) {
	ds := apknn.RandomDataset(91, 500, 32)
	tc := bootCluster(t, ds, 2, 1, true, cluster.Config{}, nil)
	ctx := context.Background()
	// Delete two shard-0 vectors directly on the node: Len drops to 248,
	// but local IDs still span [0, 250).
	node0 := &serve.Client{BaseURL: tc.nodes[0][0].ts.URL}
	for _, id := range []int{0, 249} {
		if err := node0.Delete(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	m := &cluster.Manifest{Shards: []cluster.Shard{
		{Base: -1, Replicas: []string{tc.nodes[0][0].ts.URL}},
		{Base: -2, Replicas: []string{tc.nodes[1][0].ts.URL}},
	}}
	if err := m.ResolveBases(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if m.Shards[1].Base != 250 {
		t.Fatalf("shard 1 base = %d after deletes on shard 0, want 250", m.Shards[1].Base)
	}
}

// TestLatencyAwareRouting pins replica selection: once both replicas of a
// shard are scored, the consistently slower one stops being picked as
// primary — its EWMA loses every power-of-two-choices draw — so nearly all
// traffic lands on the fast replica.
func TestLatencyAwareRouting(t *testing.T) {
	ds := apknn.RandomDataset(101, 300, 32)
	var slowHits, fastHits atomic.Int64
	tc := bootCluster(t, ds, 1, 2, false, cluster.Config{},
		func(shard, rep int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/search" {
					if rep == 0 {
						slowHits.Add(1)
						time.Sleep(30 * time.Millisecond)
					} else {
						fastHits.Add(1)
					}
				}
				h.ServeHTTP(w, r)
			})
		})
	ctx := context.Background()
	queries := apknn.RandomQueries(102, 4, 32)
	const rounds = 20
	for i := 0; i < rounds; i++ {
		if _, err := tc.client.Search(ctx, queries[i%len(queries)], 2); err != nil {
			t.Fatal(err)
		}
	}
	// Unscored replicas lead until first observed, so the slow one serves at
	// most its scoring requests plus the random first pick; after that every
	// draw prefers the fast replica.
	if slow := slowHits.Load(); slow > 4 {
		t.Fatalf("slow replica served %d of %d requests; latency-aware selection is not steering", slow, rounds)
	}
	if fast := fastHits.Load(); fast < rounds-4 {
		t.Fatalf("fast replica served only %d of %d requests", fast, rounds)
	}
}

// TestRouterAnalyticsAggregation drives a hot query through the router and
// reads the aggregated /v1/analytics: per-shard heat blocks from every
// shard, a cluster-wide top-k merge that sums the per-shard counts, and the
// windowed latency block on the router's own /v1/stats.
func TestRouterAnalyticsAggregation(t *testing.T) {
	ds := apknn.RandomDataset(111, 400, 32)
	tc := bootCluster(t, ds, 2, 1, false, cluster.Config{}, nil)
	ctx := context.Background()
	queries := apknn.RandomQueries(112, 3, 32)
	hot := queries[0]
	for i := 0; i < 8; i++ {
		if _, err := tc.client.Search(ctx, hot, 2); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries[1:] {
		if _, err := tc.client.Search(ctx, q, 2); err != nil {
			t.Fatal(err)
		}
	}

	var an cluster.AnalyticsResponse
	if err := tc.client.Do(ctx, http.MethodGet, "/v1/analytics", nil, &an); err != nil {
		t.Fatal(err)
	}
	// 10 searches scattered to 2 shards: every shard's tracker saw all 10.
	if an.QueriesObserved != 20 {
		t.Fatalf("queries observed %d, want 20", an.QueriesObserved)
	}
	if len(an.Shards) != 2 {
		t.Fatalf("%d shard blocks, want 2", len(an.Shards))
	}
	for i, sh := range an.Shards {
		if sh.Error != "" || sh.Analytics == nil {
			t.Fatalf("shard %d block: err=%q analytics=%v", i, sh.Error, sh.Analytics)
		}
		if sh.Analytics.Load.Queries == 0 {
			t.Fatalf("shard %d load block empty: %+v", i, sh.Analytics.Load)
		}
	}
	// The merge sums the hot key across shards: 8 per shard, 16 total.
	if len(an.TopQueries) == 0 || an.TopQueries[0].Key != hot.String() {
		t.Fatalf("hot query not ranked first: %+v", an.TopQueries)
	}
	if got := an.TopQueries[0].Count; got != 16 {
		t.Fatalf("merged hot count %d, want 16", got)
	}

	var st cluster.StatsResponse
	if err := tc.client.Do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		t.Fatal(err)
	}
	win, ok := st.LatencyWindow["apknn_cluster_search_seconds"]
	if !ok || win.Count == 0 {
		t.Fatalf("latency_1m missing routed search series: %+v", st.LatencyWindow)
	}
}

// asAPIError reports whether err carries a *serve.APIError, filling target.
func asAPIError(err error, target **serve.APIError) bool {
	return errors.As(err, target)
}
