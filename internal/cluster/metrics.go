package cluster

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// The routing tier's latency histograms. Leg latency is per attempt (the
// failed try and its failover both count — each was a real network round
// trip), so the gap between apknn_cluster_search_seconds and the leg series
// is exactly the scatter-gather overhead plus straggler effects.
var (
	// clusterSearchHist is the end-to-end routed /v1/search latency.
	clusterSearchHist = obs.NewHistogram("apknn_cluster_search_seconds",
		"End-to-end routed /v1/search request latency")
	// clusterSearchBatchHist is the end-to-end routed /v1/search_batch latency.
	clusterSearchBatchHist = obs.NewHistogram("apknn_cluster_search_batch_seconds",
		"End-to-end routed /v1/search_batch request latency")
	// legHist is one replica attempt of one shard leg — launch to answer.
	legHist = obs.NewHistogram("apknn_cluster_leg_seconds",
		"Per-attempt shard leg latency, hedges and failovers included")
	// hedgeWinHist records, on each hedge win, how long the primary had
	// already been outstanding when the winning attempt launched — a lower
	// bound on the tail latency the hedge clipped (the full counterfactual is
	// unmeasurable: the loser is canceled before it answers).
	hedgeWinHist = obs.NewHistogram("apknn_cluster_hedge_win_margin_seconds",
		"Primary's elapsed in-flight time at the winning hedge's launch")
)

// handleMetrics serves GET /metrics on the router: every histogram on the
// default registry, the cluster counters, and the per-shard leg counter
// labeled by shard index.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		serve.WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	obs.SetMetricsHeaders(w)
	obs.WriteBuildInfo(w)
	obs.Default.WritePrometheus(w)
	obs.Default.WriteWindowed(w, time.Now())
	obs.WriteCounter(w, "apknn_debug_traces_recorded_total",
		"Traces completed into the flight recorder", r.rec.Recorded())
	st := r.Stats()
	obs.WriteCounter(w, "apknn_cluster_searches_total",
		"Searches routed via /v1/search", st.Searches)
	obs.WriteCounter(w, "apknn_cluster_batch_searches_total",
		"Batches routed via /v1/search_batch", st.BatchSearches)
	obs.WriteCounter(w, "apknn_cluster_inserts_total",
		"Inserts routed to the tail shard", st.Inserts)
	obs.WriteCounter(w, "apknn_cluster_deletes_total",
		"Deletes routed to the owning shard", st.Deletes)
	obs.WriteCounter(w, "apknn_cluster_shard_calls_total",
		"Total shard legs scattered", st.ShardCalls)
	obs.WriteCounter(w, "apknn_cluster_hedges_total",
		"Hedged second requests fired", st.Hedges)
	obs.WriteCounter(w, "apknn_cluster_hedge_wins_total",
		"Hedged requests that answered first", st.HedgeWins)
	obs.WriteCounter(w, "apknn_cluster_failovers_total",
		"Legs re-sent to another replica after an error", st.Failovers)
	obs.WriteCounter(w, "apknn_cluster_retries_total",
		"Saturated answers retried after backoff", st.Retries)
	obs.WriteCounter(w, "apknn_cluster_ejected_total",
		"Replica eject transitions", st.Ejected)
	obs.WriteCounter(w, "apknn_cluster_readmitted_total",
		"Replica readmit transitions", st.Readmitted)
	legs := make([]obs.LabeledValue, len(r.sets))
	for i, set := range r.sets {
		legs[i] = obs.LabeledValue{Value: strconv.Itoa(set.shard), Count: set.legs.Load()}
	}
	obs.WriteCounterVec(w, "apknn_cluster_shard_legs_total",
		"Shard legs scattered, per shard", "shard", legs)
	obs.WriteGauge(w, "apknn_cluster_healthy_replicas",
		"Replicas the health prober currently admits", float64(st.Healthy))
}

// observeRequest finishes one traced routed request — end-to-end histogram
// record, root span end, flight-recorder completion, plus the slow-query
// line when the threshold is crossed.
func (r *Router) observeRequest(h *obs.Histogram, tr *obs.Trace, start time.Time, sw *serve.StatusRecorder) {
	total := time.Since(start)
	h.Record(total)
	tr.Root().EndIn(total)
	r.rec.Complete(tr, total, obs.Outcome{Status: sw.Status(), Err: sw.ErrorBody()})
	lg := r.cfg.SlowQueryLog
	if lg == nil || total < r.cfg.SlowQuery {
		return
	}
	lg.LogAttrs(context.Background(), slog.LevelWarn, "slow query", tr.Attrs(total)...)
}

// beginTrace mirrors the serve tier's: sanitize and echo the request ID,
// adopt an incoming trace context (a router fronted by another router), and
// root the span tree.
func (r *Router) beginTrace(w http.ResponseWriter, req *http.Request, rootName string) *obs.Trace {
	id := ensureRequestID(w, req)
	traceID, parent := id, ""
	if tid, sid, ok := obs.ParseTraceContext(req.Header.Get(obs.TraceContextHeader)); ok {
		traceID, parent = tid, sid
	}
	tr := obs.NewTrace(traceID, rootName)
	root := tr.Root()
	root.SetAttr("node", r.cfg.NodeID)
	if id != traceID {
		root.SetAttr("request_id", id)
	}
	if parent != "" {
		root.SetAttr("parent_span_id", parent)
	}
	return tr
}

// ensureRequestID mirrors the serve tier's: read, sanitize (length cap plus
// charset whitelist — a hostile header must not forge structured-log
// fields) or assign, echo on the response. The ID then rides every scatter
// leg via the context, so the shard-side slow-query log names the same
// request the caller sent.
func ensureRequestID(w http.ResponseWriter, req *http.Request) string {
	id := obs.SanitizeRequestID(req.Header.Get(obs.RequestIDHeader))
	if id == "" {
		id = obs.NewRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, id)
	return id
}
