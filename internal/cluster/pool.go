package cluster

import (
	"context"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Replica scoring. Each replica carries an EWMA of its observed leg latency;
// candidate ordering prefers low scores. The score decays toward zero with
// age, so a replica that went slow (or was penalized for a transport
// failure) and then stopped receiving traffic re-earns its share instead of
// being starved forever on stale evidence.
const (
	// ewmaAlpha weights each new leg sample into the replica's score.
	ewmaAlpha = 0.3
	// scoreHalfLife halves a replica's score per interval without
	// observations — the decay that lets a penalized replica recover.
	scoreHalfLife = 10 * time.Second
	// transportPenaltyNS is the latency a transport failure is charged as,
	// at minimum — an unreachable replica scores worse than any answering
	// one until the penalty decays.
	transportPenaltyNS = float64(500 * time.Millisecond)
	// hedgeMinSamples is the windowed sample count a replica needs before
	// its own p99 drives the hedge timer; below it the static delay rules.
	hedgeMinSamples = 20
	// hedgeFloor and hedgeCeil clamp adaptive hedge delays: never hedge so
	// eagerly that every request duplicates, never wait longer than a
	// failover would take to be worth arming at all.
	hedgeFloor = time.Millisecond
	hedgeCeil  = 2 * time.Second
)

// replica is one apserve endpoint of a shard's replica set, with the
// router's current health verdict and latency score. Replicas start healthy
// and unscored; the prober and transport-level request failures eject them,
// a succeeding probe readmits them, and every scatter-leg answer feeds the
// EWMA the candidate ordering reads.
type replica struct {
	shard   int
	addr    string
	client  *serve.Client
	healthy atomic.Bool
	// ewmaNS is the smoothed leg latency in nanoseconds (as Float64bits);
	// zero means never observed — cold replicas sort first and get traffic.
	ewmaNS atomic.Uint64
	// lastObs is the UnixNano of the last observation or penalty, the
	// anchor the score decay ages against.
	lastObs atomic.Int64
	// hist is this replica's own leg-latency series (unregistered — the
	// per-replica cardinality stays off /metrics); its built-in minute
	// window supplies the adaptive hedge delay.
	hist *obs.Histogram
}

// observe folds one successful leg latency into the replica's score and
// windowed history.
func (rep *replica) observe(leg time.Duration, now time.Time) {
	rep.hist.Record(leg)
	rep.updateScore(float64(leg), now)
}

// penalize charges a transport failure as a slow observation — at least
// transportPenaltyNS, or 4× the current score if that is already worse — so
// the failing replica drops to the back of the candidate order and decays
// back in rather than flapping.
func (rep *replica) penalize(now time.Time) {
	cur := math.Float64frombits(rep.ewmaNS.Load())
	rep.updateScore(math.Max(transportPenaltyNS, 4*cur), now)
}

func (rep *replica) updateScore(sample float64, now time.Time) {
	for {
		old := rep.ewmaNS.Load()
		cur := math.Float64frombits(old)
		next := sample
		if cur != 0 {
			next = (1-ewmaAlpha)*cur + ewmaAlpha*sample
		}
		if rep.ewmaNS.CompareAndSwap(old, math.Float64bits(next)) {
			rep.lastObs.Store(now.UnixNano())
			return
		}
	}
}

// score is the replica's age-decayed latency estimate in nanoseconds; lower
// routes sooner. Zero means no evidence — never-observed (or fully decayed)
// replicas look maximally attractive and re-earn traffic.
func (rep *replica) score(now time.Time) float64 {
	v := math.Float64frombits(rep.ewmaNS.Load())
	if v == 0 {
		return 0
	}
	age := now.UnixNano() - rep.lastObs.Load()
	if age <= 0 {
		return v
	}
	return v * math.Exp2(-float64(age)/float64(scoreHalfLife))
}

// hedgeDelay derives the hedge timer from this replica's own windowed leg
// p99: a request is hedged exactly when it is a straggler by the primary's
// recent standards. Too few samples in the window returns zero and the
// caller falls back to the static delay.
func (rep *replica) hedgeDelay(now time.Time) time.Duration {
	snap := rep.hist.WindowSnapshot(now)
	if snap.Count < hedgeMinSamples {
		return 0
	}
	d := time.Duration(snap.Quantile(0.99))
	if d < hedgeFloor {
		d = hedgeFloor
	}
	if d > hedgeCeil {
		d = hedgeCeil
	}
	return d
}

// shardSet is a shard's replica set with latency-aware primary selection,
// the per-shard face of the client pool.
type shardSet struct {
	shard    int
	base     int
	replicas []*replica
	// seq feeds the power-of-two-choices sampler — a counter run through a
	// mixer, so candidate picks are spread without a locked rand source.
	seq atomic.Uint64
	// insertMu serializes insert broadcasts to this shard: replicas assign
	// local IDs in arrival order, so two inserts racing through one router
	// could land in opposite orders on different replicas and permanently
	// swap their ID assignments even though every replica acked. Holding
	// the broadcast under a lock makes all replicas see one router's
	// inserts in one order. (Deletes are by-ID tombstones, order-free.)
	insertMu sync.Mutex
	// legs counts attempts launched against this shard — the per-shard
	// counter /metrics exports as apknn_cluster_shard_legs_total.
	legs atomic.Int64
}

// mix64 is splitmix64's finalizer — a cheap stateless bit mixer that turns
// the sequential pick counter into well-spread candidate indices.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// candidates returns the replicas in attempt order for one request. The
// primary is chosen by power-of-two-choices over the healthy set: two
// pseudo-random picks, the one with the lower age-decayed latency EWMA
// leads. Sampling two instead of taking the global minimum keeps a stale
// score from herding every request onto one replica between observations.
// The remaining healthy replicas follow score-ascending as failover
// targets, then ejected replicas as a last resort — a shard whose every
// replica has been ejected still gets tried rather than failing without a
// single request.
func (s *shardSet) candidates() []*replica {
	n := len(s.replicas)
	out := make([]*replica, 0, n)
	var down []*replica
	for _, rep := range s.replicas {
		if rep.healthy.Load() {
			out = append(out, rep)
		} else {
			down = append(down, rep)
		}
	}
	if h := len(out); h > 1 {
		now := time.Now()
		sort.SliceStable(out, func(i, j int) bool {
			return out[i].score(now) < out[j].score(now)
		})
		r := mix64(s.seq.Add(1))
		i := int(r % uint64(h))
		j := int((r >> 32) % uint64(h-1))
		if j >= i {
			j++
		}
		lead := i
		if out[j].score(now) < out[i].score(now) {
			lead = j
		}
		out[0], out[lead] = out[lead], out[0]
	}
	return append(out, down...)
}

// healthyCount is the number of currently admitted replicas.
func (s *shardSet) healthyCount() int {
	n := 0
	for _, rep := range s.replicas {
		if rep.healthy.Load() {
			n++
		}
	}
	return n
}

// newPool builds the per-shard replica sets from a validated manifest. All
// clients share one http.Client so the connection pool is cluster-wide.
func newPool(m *Manifest, hc *http.Client) []*shardSet {
	sets := make([]*shardSet, len(m.Shards))
	for i, sh := range m.Shards {
		set := &shardSet{shard: i, base: sh.Base}
		for _, addr := range sh.Replicas {
			rep := &replica{
				shard:  i,
				addr:   addr,
				client: &serve.Client{BaseURL: addr, HTTPClient: hc},
				hist: obs.NewUnregisteredHistogram("apknn_cluster_replica_leg_seconds",
					"Per-replica shard leg latency (windowed, drives adaptive hedging)"),
			}
			rep.healthy.Store(true)
			set.replicas = append(set.replicas, rep)
		}
		sets[i] = set
	}
	return sets
}

// Probe runs one health pass over every replica: /healthz within the
// configured timeout, ejecting failures and readmitting recoveries. The
// background prober calls it on every tick; it is exported so operators
// (and tests) can force a pass instead of waiting one interval out. The
// eject/readmit counters record only transitions, so a steady-state
// cluster probes silently.
func (r *Router) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, set := range r.sets {
		for _, rep := range set.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
				defer cancel()
				_, err := rep.client.Health(pctx)
				if err != nil {
					if rep.healthy.Swap(false) {
						r.ctrs.ejected.Add(1)
						r.logHealth("replica ejected", rep, err)
					}
					return
				}
				if !rep.healthy.Swap(true) {
					r.ctrs.readmitted.Add(1)
					r.logHealth("replica readmitted", rep, nil)
				}
			}(rep)
		}
	}
	wg.Wait()
}

// logHealth emits one structured health-transition record when the router
// was configured with a Logger; err is attached for ejections.
func (r *Router) logHealth(msg string, rep *replica, err error) {
	if r.cfg.Logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.Int("shard", rep.shard),
		slog.String("addr", rep.addr),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	r.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, msg, attrs...)
}

// prober is the background health loop, stopped by Close.
func (r *Router) prober(ctx context.Context) {
	defer close(r.probeDone)
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.Probe(ctx)
		case <-ctx.Done():
			return
		}
	}
}
