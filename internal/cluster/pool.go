package cluster

import (
	"context"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// replica is one apserve endpoint of a shard's replica set, with the
// router's current health verdict. Replicas start healthy; the prober and
// transport-level request failures eject them, a succeeding probe readmits
// them.
type replica struct {
	shard   int
	addr    string
	client  *serve.Client
	healthy atomic.Bool
}

// shardSet is a shard's replica set with rotating primary selection, the
// per-shard face of the client pool.
type shardSet struct {
	shard    int
	base     int
	replicas []*replica
	rr       atomic.Uint64
	// insertMu serializes insert broadcasts to this shard: replicas assign
	// local IDs in arrival order, so two inserts racing through one router
	// could land in opposite orders on different replicas and permanently
	// swap their ID assignments even though every replica acked. Holding
	// the broadcast under a lock makes all replicas see one router's
	// inserts in one order. (Deletes are by-ID tombstones, order-free.)
	insertMu sync.Mutex
	// legs counts attempts launched against this shard — the per-shard
	// counter /metrics exports as apknn_cluster_shard_legs_total.
	legs atomic.Int64
}

// candidates returns the replicas in attempt order for one request: healthy
// replicas first, rotated by a round-robin counter so load spreads, then
// ejected replicas as a last resort — a shard whose every replica has been
// ejected still gets tried rather than failing without a single request.
func (s *shardSet) candidates() []*replica {
	n := len(s.replicas)
	start := int(s.rr.Add(1)-1) % n
	out := make([]*replica, 0, n)
	var down []*replica
	for i := 0; i < n; i++ {
		rep := s.replicas[(start+i)%n]
		if rep.healthy.Load() {
			out = append(out, rep)
		} else {
			down = append(down, rep)
		}
	}
	return append(out, down...)
}

// healthyCount is the number of currently admitted replicas.
func (s *shardSet) healthyCount() int {
	n := 0
	for _, rep := range s.replicas {
		if rep.healthy.Load() {
			n++
		}
	}
	return n
}

// newPool builds the per-shard replica sets from a validated manifest. All
// clients share one http.Client so the connection pool is cluster-wide.
func newPool(m *Manifest, hc *http.Client) []*shardSet {
	sets := make([]*shardSet, len(m.Shards))
	for i, sh := range m.Shards {
		set := &shardSet{shard: i, base: sh.Base}
		for _, addr := range sh.Replicas {
			rep := &replica{
				shard:  i,
				addr:   addr,
				client: &serve.Client{BaseURL: addr, HTTPClient: hc},
			}
			rep.healthy.Store(true)
			set.replicas = append(set.replicas, rep)
		}
		sets[i] = set
	}
	return sets
}

// Probe runs one health pass over every replica: /healthz within the
// configured timeout, ejecting failures and readmitting recoveries. The
// background prober calls it on every tick; it is exported so operators
// (and tests) can force a pass instead of waiting one interval out. The
// eject/readmit counters record only transitions, so a steady-state
// cluster probes silently.
func (r *Router) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, set := range r.sets {
		for _, rep := range set.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
				defer cancel()
				_, err := rep.client.Health(pctx)
				if err != nil {
					if rep.healthy.Swap(false) {
						r.ctrs.ejected.Add(1)
						r.logHealth("replica ejected", rep, err)
					}
					return
				}
				if !rep.healthy.Swap(true) {
					r.ctrs.readmitted.Add(1)
					r.logHealth("replica readmitted", rep, nil)
				}
			}(rep)
		}
	}
	wg.Wait()
}

// logHealth emits one structured health-transition record when the router
// was configured with a Logger; err is attached for ejections.
func (r *Router) logHealth(msg string, rep *replica, err error) {
	if r.cfg.Logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.Int("shard", rep.shard),
		slog.String("addr", rep.addr),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	r.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, msg, attrs...)
}

// prober is the background health loop, stopped by Close.
func (r *Router) prober(ctx context.Context) {
	defer close(r.probeDone)
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.Probe(ctx)
		case <-ctx.Done():
			return
		}
	}
}
