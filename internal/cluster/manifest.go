// Package cluster is the multi-node tier over apserve: a stateless router
// that partitions the dataset across N serving nodes and replays the
// paper's fleet model one level up. Where internal/shard scatters one query
// batch across simulated boards inside a process and merges per-board top-k
// on the host (§III-C), the router scatters /v1/search across shard
// processes over HTTP, over-fetches k per shard, and merges with the same
// (Dist, ID) tie-break — so cluster results are byte-identical to a
// single-node index over the union dataset. Around the scatter sit R-way
// replication with health-checked replica sets, hedged reads (a second
// replica fired after a configurable delay, first answer wins), bounded
// 429 retry honoring Retry-After, and best-effort routing of live
// insert/delete traffic to the owning shard's replicas.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/serve"
)

// Manifest is the static cluster topology: shards in global-ID order, each
// with the base of its ID range and the replica endpoints serving it. The
// assignment is recorded once at cluster formation — shard i owns global
// IDs [Base_i, Base_{i+1}), and the last shard's range is open-ended so a
// live cluster can grow at the tail without re-partitioning.
type Manifest struct {
	Shards []Shard `json:"shards"`
	// Dim is the cluster-wide vector dimensionality, recorded when
	// ResolveBases cross-checks it across shards (0 when unknown). The
	// router uses it to refuse wrong-length queries locally instead of
	// scattering them.
	Dim int `json:"dim,omitempty"`
}

// Shard is one dataset partition and its replica set.
type Shard struct {
	// Base is the first global ID this shard owns. A node serves local IDs
	// [0, n); the router translates global = Base + local both ways.
	Base int `json:"base"`
	// Replicas are the base URLs of the apserve nodes serving this shard's
	// partition. Every replica must hold identical data.
	Replicas []string `json:"replicas"`
}

// Validate checks the invariants the router relies on: at least one shard,
// every shard with at least one replica URL, bases starting at 0 and
// strictly ascending.
func (m *Manifest) Validate() error {
	if m == nil || len(m.Shards) == 0 {
		return fmt.Errorf("cluster: manifest has no shards")
	}
	for i, s := range m.Shards {
		if len(s.Replicas) == 0 {
			return fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		for _, r := range s.Replicas {
			if r == "" {
				return fmt.Errorf("cluster: shard %d has an empty replica URL", i)
			}
		}
		if i == 0 && s.Base != 0 {
			return fmt.Errorf("cluster: shard 0 base is %d, want 0", s.Base)
		}
		if i > 0 && s.Base <= m.Shards[i-1].Base {
			return fmt.Errorf("cluster: shard %d base %d does not ascend past shard %d base %d",
				i, s.Base, i-1, m.Shards[i-1].Base)
		}
	}
	return nil
}

// Owner returns the index of the shard owning global ID id, or -1 for a
// negative ID. Ownership is by range: the last shard whose base does not
// exceed id, with the tail shard owning everything past its base.
func (m *Manifest) Owner(id int) int {
	if id < 0 {
		return -1
	}
	// First shard with Base > id, minus one.
	i := sort.Search(len(m.Shards), func(i int) bool { return m.Shards[i].Base > id })
	return i - 1
}

// NumReplicas is the total replica endpoints across all shards.
func (m *Manifest) NumReplicas() int {
	n := 0
	for _, s := range m.Shards {
		n += len(s.Replicas)
	}
	return n
}

// ParseTopology builds a manifest from the compact flag form aprouter
// accepts: shards separated by ';', replicas within a shard by ','.
//
//	"10.0.0.1:8080,10.0.0.2:8080;10.0.0.3:8080"
//
// is two shards, the first replicated twice. Addresses without a scheme get
// "http://". Bases are left unassigned (shard i gets base -i-1 so a
// manifest that skips ResolveBases fails Validate loudly rather than
// routing every ID to shard 0).
func ParseTopology(s string) (*Manifest, error) {
	m := &Manifest{}
	for i, shardSpec := range strings.Split(s, ";") {
		shardSpec = strings.TrimSpace(shardSpec)
		if shardSpec == "" {
			return nil, fmt.Errorf("cluster: topology shard %d is empty", i)
		}
		sh := Shard{Base: -i - 1}
		if i == 0 {
			sh.Base = 0
		}
		for _, addr := range strings.Split(shardSpec, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				return nil, fmt.Errorf("cluster: topology shard %d has an empty replica", i)
			}
			if !strings.Contains(addr, "://") {
				addr = "http://" + addr
			}
			sh.Replicas = append(sh.Replicas, addr)
		}
		m.Shards = append(m.Shards, sh)
	}
	return m, nil
}

// ResolveBases assigns the global-ID bases by probing each shard's
// /v1/stats node block for its local ID-space size: shard i's base is the
// sum of the ID spaces of shards 0..i-1, i.e. the ID layout of the
// concatenated union dataset. The ID space — not the live vector count —
// is what sizes a range: a live node that has seen deletes still addresses
// local IDs up to its high-water mark, and overlapping ranges would
// conflate vectors across shards. It also cross-checks that every shard
// reports the same dimensionality. The first replica of each shard that
// answers is believed; a shard none of whose replicas answer fails the
// call.
func (m *Manifest) ResolveBases(ctx context.Context, hc *http.Client) error {
	base := 0
	dim := 0
	for i := range m.Shards {
		var node *serve.NodeInfo
		var lastErr error
		for _, addr := range m.Shards[i].Replicas {
			c := &serve.Client{BaseURL: addr, HTTPClient: hc}
			st, err := c.Stats(ctx)
			if err != nil {
				lastErr = err
				continue
			}
			if st.Node == nil {
				lastErr = fmt.Errorf("cluster: node %s reports no identity block (want apserve with -node-id)", addr)
				continue
			}
			node = st.Node
			break
		}
		if node == nil {
			return fmt.Errorf("cluster: probing shard %d: %w", i, lastErr)
		}
		if dim == 0 {
			dim = node.Dim
		} else if node.Dim != 0 && node.Dim != dim {
			return fmt.Errorf("cluster: shard %d serves %d-bit vectors, shard 0 serves %d-bit", i, node.Dim, dim)
		}
		m.Shards[i].Base = base
		if node.IDSpace > 0 {
			base += node.IDSpace
		} else {
			base += node.Vectors
		}
	}
	m.Dim = dim
	return nil
}

// LoadManifest reads a JSON manifest from path and validates it.
func LoadManifest(path string) (*Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("cluster: parse manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Save writes the manifest as indented JSON — the durable record of the
// range assignment the cluster was formed with.
func (m *Manifest) Save(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: encode manifest: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("cluster: write manifest: %w", err)
	}
	return nil
}
