package cluster

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestReplica(addr string) *replica {
	rep := &replica{
		addr: addr,
		hist: obs.NewUnregisteredHistogram("test_replica_leg_seconds", "test"),
	}
	rep.healthy.Store(true)
	return rep
}

// TestReplicaScoreDecay pins the recovery mechanic: a slow observation's
// score halves per half-life without traffic, so a once-slow replica decays
// back toward "unscored" and re-earns requests instead of being starved on
// stale evidence.
func TestReplicaScoreDecay(t *testing.T) {
	rep := newTestReplica("a")
	t0 := time.Unix(1000, 0)
	rep.observe(100*time.Millisecond, t0)
	if got := rep.score(t0); got != float64(100*time.Millisecond) {
		t.Fatalf("fresh score = %v, want %v", got, float64(100*time.Millisecond))
	}
	half := rep.score(t0.Add(scoreHalfLife))
	if want := float64(50 * time.Millisecond); half < want*0.99 || half > want*1.01 {
		t.Fatalf("score after one half-life = %v, want ~%v", half, want)
	}
	if aged := rep.score(t0.Add(100 * scoreHalfLife)); aged >= float64(time.Microsecond) {
		t.Fatalf("score after 100 half-lives = %v, want ~0 (recovered)", aged)
	}
	// EWMA: a fast sample pulls a slow score down by alpha.
	rep.observe(0, t0)
	if got, want := rep.score(t0), (1-ewmaAlpha)*float64(100*time.Millisecond); got != want {
		t.Fatalf("EWMA after fast sample = %v, want %v", got, want)
	}
}

// TestReplicaPenalty checks a transport failure scores worse than any
// answering replica, and that the penalty compounds.
func TestReplicaPenalty(t *testing.T) {
	rep := newTestReplica("a")
	t0 := time.Unix(1000, 0)
	rep.observe(time.Millisecond, t0)
	rep.penalize(t0)
	s1 := rep.score(t0)
	if s1 <= float64(time.Millisecond) {
		t.Fatalf("penalized score %v did not rise above the observed latency", s1)
	}
	rep.penalize(t0)
	if s2 := rep.score(t0); s2 <= s1 {
		t.Fatalf("second penalty %v did not compound on %v", s2, s1)
	}
}

// TestCandidatesOrder pins the attempt order: the P2C winner leads, the
// remaining healthy replicas follow score-ascending, ejected replicas come
// last, and every replica appears exactly once — the failover contract the
// scatter path depends on.
func TestCandidatesOrder(t *testing.T) {
	now := time.Now()
	fast, slow, dead := newTestReplica("fast"), newTestReplica("slow"), newTestReplica("dead")
	fast.observe(time.Millisecond, now)
	slow.observe(80*time.Millisecond, now)
	dead.healthy.Store(false)
	set := &shardSet{replicas: []*replica{dead, slow, fast}}
	for i := 0; i < 32; i++ {
		got := set.candidates()
		if len(got) != 3 {
			t.Fatalf("candidates returned %d replicas, want 3", len(got))
		}
		// With two healthy replicas P2C always samples both, so the faster
		// one must lead on every draw.
		if got[0] != fast || got[1] != slow || got[2] != dead {
			t.Fatalf("draw %d order = [%s %s %s], want [fast slow dead]",
				i, got[0].addr, got[1].addr, got[2].addr)
		}
	}
}

// TestAdaptiveHedgeDelay checks the per-replica hedge timer: silent until
// the window holds enough samples, then the windowed p99 clamped to
// [hedgeFloor, hedgeCeil].
func TestAdaptiveHedgeDelay(t *testing.T) {
	rep := newTestReplica("a")
	now := time.Now()
	for i := 0; i < hedgeMinSamples-1; i++ {
		rep.hist.Record(10 * time.Millisecond)
	}
	if d := rep.hedgeDelay(now); d != 0 {
		t.Fatalf("hedge delay %v below the sample floor, want 0 (fall back to static)", d)
	}
	rep.hist.Record(10 * time.Millisecond)
	d := rep.hedgeDelay(now)
	// The log-bucketed p99 overshoots by at most one sub-bucket width.
	if d < 10*time.Millisecond || d > 12*time.Millisecond {
		t.Fatalf("hedge delay %v, want ~10ms (windowed p99)", d)
	}
	// A pathologically slow window clamps to the ceiling.
	slow := newTestReplica("b")
	for i := 0; i < hedgeMinSamples; i++ {
		slow.hist.Record(30 * time.Second)
	}
	if d := slow.hedgeDelay(now); d != hedgeCeil {
		t.Fatalf("hedge delay %v, want ceiling %v", d, hedgeCeil)
	}
}
