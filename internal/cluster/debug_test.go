package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	apknn "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

// pollTraces retries a /v1/debug/traces lookup until a record appears: the
// recorder completes in a deferred hook that can land a beat after the
// response reaches the client.
func pollTraces(t *testing.T, c *serve.Client, query url.Values) *serve.DebugTracesResponse {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		dt, err := c.DebugTraces(ctx, query)
		if err != nil {
			t.Fatal(err)
		}
		if len(dt.Traces) > 0 {
			return dt
		}
		select {
		case <-ctx.Done():
			t.Fatalf("trace %v never reached the flight recorder", query)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestDebugTracesStitched is the cross-node acceptance test: one search
// through the router must yield, at the router's /v1/debug/traces, a single
// stitched tree — scatter legs for every shard, each carrying the
// shard-side subtree whose recorded parent span ID is exactly that leg's
// span ID, under one consistent trace ID.
func TestDebugTracesStitched(t *testing.T) {
	ds := apknn.RandomDataset(31, 600, 32)
	tc := bootCluster(t, ds, 2, 1, false, cluster.Config{}, nil)

	const traceID = "stitch-e2e-1"
	ctx := obs.WithRequestID(context.Background(), traceID)
	q := apknn.RandomQueries(32, 1, 32)[0]
	if _, err := tc.client.Search(ctx, q, 3); err != nil {
		t.Fatal(err)
	}

	dt := pollTraces(t, tc.client, url.Values{"trace_id": {traceID}})
	if dt.Node != "router" {
		t.Fatalf("router debug node = %q", dt.Node)
	}
	rec := dt.Traces[0]
	if rec.TraceID != traceID || rec.Status != 200 {
		t.Fatalf("record = %+v", rec)
	}
	root := rec.Root
	if root.Name != "router.search" {
		t.Fatalf("root = %q", root.Name)
	}
	if root.Find("merge") == nil {
		t.Error("merge span missing")
	}
	for shard := 0; shard < 2; shard++ {
		leg := root.Find(fmt.Sprintf("shard%d_leg", shard))
		if leg == nil {
			t.Fatalf("shard%d leg missing from %+v", shard, root)
		}
		if leg.Attr("span_id") == "" || leg.Attr("replica") == "" {
			t.Fatalf("leg attrs = %v", leg.Attrs)
		}
		if len(leg.Children) != 1 {
			t.Fatalf("shard%d leg has %d stitched children (stitch_error=%q)",
				shard, len(leg.Children), leg.Attr("stitch_error"))
		}
		sub := leg.Children[0]
		if sub.Name != "serve.search" {
			t.Fatalf("stitched subtree root = %q", sub.Name)
		}
		if sub.Attr("parent_span_id") != leg.Attr("span_id") {
			t.Fatalf("parentage broken: shard recorded %q, leg is %q",
				sub.Attr("parent_span_id"), leg.Attr("span_id"))
		}
		if want := fmt.Sprintf("shard%d-a", shard); sub.Attr("node") != want {
			t.Fatalf("stitched node = %q, want %q", sub.Attr("node"), want)
		}
		for _, name := range []string{"queue_wait", "backend"} {
			if sub.Find(name) == nil {
				t.Errorf("shard%d subtree missing %q: %+v", shard, name, sub)
			}
		}
	}

	// The same trace ID must be independently retrievable on each shard —
	// that is what the router's stitcher (and a debugging human) fetches.
	for shard := 0; shard < 2; shard++ {
		shardClient := &serve.Client{BaseURL: tc.nodes[shard][0].ts.URL}
		sdt := pollTraces(t, shardClient, url.Values{"trace_id": {traceID}})
		if sdt.Traces[0].TraceID != traceID {
			t.Fatalf("shard %d kept trace %q", shard, sdt.Traces[0].TraceID)
		}
	}

	// A class listing does not stitch by default (it would fan out one
	// fetch per record per leg on every aptop poll).
	ctx2, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	listing, err := tc.client.DebugTraces(ctx2, url.Values{"class": {obs.ClassRecent}})
	if err != nil || len(listing.Traces) == 0 {
		t.Fatalf("recent listing: %v", err)
	}
	for _, lr := range listing.Traces {
		for _, leg := range lr.Root.Children {
			if len(leg.Children) != 0 {
				t.Fatalf("unstitched listing carries a grafted subtree: %+v", leg)
			}
		}
	}
}

// TestDebugTracesHedgeSiblings forces a hedge win and asserts both attempts
// appear as sibling leg spans of one trace — the stalled primary and the
// hedged winner, the winner marked.
func TestDebugTracesHedgeSiblings(t *testing.T) {
	ds := apknn.RandomDataset(41, 400, 32)
	var stalls atomic.Int64
	tc := bootCluster(t, ds, 1, 2, false,
		cluster.Config{HedgeDelay: 10 * time.Millisecond},
		func(shard, rep int, h http.Handler) http.Handler {
			if rep != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/search" {
					stalls.Add(1)
					select {
					case <-time.After(5 * time.Second):
					case <-r.Context().Done():
						return
					}
				}
				h.ServeHTTP(w, r)
			})
		})
	q := apknn.RandomQueries(42, 1, 32)[0]
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var hedgedTrace string
	for i := 0; i < 4 && hedgedTrace == ""; i++ {
		id := fmt.Sprintf("hedge-e2e-%d", i)
		before := stalls.Load()
		if _, err := tc.client.Search(obs.WithRequestID(ctx, id), q, 3); err != nil {
			t.Fatal(err)
		}
		if stalls.Load() > before {
			hedgedTrace = id
		}
	}
	if hedgedTrace == "" {
		t.Fatal("the stalled replica never became primary; no hedge to inspect")
	}

	dt := pollTraces(t, tc.client, url.Values{"trace_id": {hedgedTrace}, "stitch": {"0"}})
	root := dt.Traces[0].Root
	var legs []*obs.WireSpan
	for _, c := range root.Children {
		if c.Name == "shard0_leg" {
			legs = append(legs, c)
		}
	}
	if len(legs) != 2 {
		t.Fatalf("trace has %d shard0 legs, want hedge siblings: %+v", len(legs), root)
	}
	var winners, hedged int
	for _, leg := range legs {
		if leg.Attr("winner") == "true" {
			winners++
			if leg.Attr("hedged") != "true" {
				t.Fatalf("winning leg was not the hedge: %v", leg.Attrs)
			}
		}
		if leg.Attr("hedged") == "true" {
			hedged++
		}
	}
	if winners != 1 || hedged != 1 {
		t.Fatalf("winners=%d hedged=%d, want exactly one each (legs: %+v, %+v)",
			winners, hedged, legs[0].Attrs, legs[1].Attrs)
	}
	if dt.Classes[obs.ClassHedge] == 0 {
		t.Fatalf("hedge-won trace not classified: %v", dt.Classes)
	}
}
