package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	apknn "repro"
	"repro/internal/heat"
	"repro/internal/knn"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Config tunes a Router. The zero value routes with the defaults below.
type Config struct {
	// HedgeDelay arms hedged reads: if a shard's primary replica has not
	// answered within this delay, the same request is fired at a second
	// replica and the first answer wins (the loser is canceled). Zero
	// disables hedging. Set it near the fleet's p99 so only straggling
	// requests pay the duplicate work.
	HedgeDelay time.Duration
	// AdaptiveHedge derives each leg's hedge delay from the primary
	// replica's own windowed (last-minute) leg p99 instead of the static
	// HedgeDelay, once that replica has enough recent samples; until then
	// HedgeDelay applies (so zero HedgeDelay + AdaptiveHedge hedges nothing
	// during warm-up, then tracks the replica).
	AdaptiveHedge bool
	// ProbeInterval is the background health-check period per replica
	// (default 1s; negative disables the prober — useful in tests that
	// drive probes explicitly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 500ms).
	ProbeTimeout time.Duration
	// DefaultK answers requests that omit k (default 10).
	DefaultK int
	// Dim, when set, refuses wrong-length queries with 400 at the router
	// instead of scattering them to every shard.
	Dim int
	// Retry is the per-replica backoff policy for saturated (429/503)
	// answers; see serve.RetryPolicy for the defaults.
	Retry serve.RetryPolicy
	// HTTPClient overrides the pooled client all replica connections share.
	HTTPClient *http.Client
	// Logger, when non-nil, receives structured records for replica health
	// transitions (eject on probe/transport failure, readmit on recovery).
	Logger *slog.Logger
	// SlowQueryLog, when non-nil, receives one structured record per routed
	// request whose end-to-end latency is at least SlowQuery, with request ID
	// and stage breakdown. Nil disables slow-query logging.
	SlowQueryLog *slog.Logger
	// SlowQuery is the slow-query threshold; zero with SlowQueryLog set logs
	// every routed request.
	SlowQuery time.Duration
	// NodeID names this router in its flight-recorder records and the
	// /v1/debug/traces node field (default "router").
	NodeID string
	// TraceDepth is the per-class flight-recorder retention (0 = the obs
	// default).
	TraceDepth int
	// TraceSlowFactor classifies a routed request into the slow ring at this
	// multiple of the windowed routed-search p99 (0 = the obs default).
	TraceSlowFactor float64
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.NodeID == "" {
		c.NodeID = "router"
	}
	return c
}

// statsTimeout bounds each per-node /v1/stats fetch during aggregation.
const statsTimeout = 2 * time.Second

// clusterCounters is the atomically updated backing store for ClusterStats.
type clusterCounters struct {
	searches      atomic.Int64
	batchSearches atomic.Int64
	inserts       atomic.Int64
	deletes       atomic.Int64
	shardCalls    atomic.Int64
	hedges        atomic.Int64
	hedgeWins     atomic.Int64
	failovers     atomic.Int64
	retries       atomic.Int64
	ejected       atomic.Int64
	readmitted    atomic.Int64
}

// Router is the stateless scatter-gather tier: it owns no data, only the
// manifest, the replica pool, and the merge. Create it with New, mount
// Handler on an http.Server, Close it on shutdown.
type Router struct {
	manifest  *Manifest
	sets      []*shardSet
	cfg       Config
	ctrs      clusterCounters
	rec       *obs.FlightRecorder
	mux       *http.ServeMux
	hc        *http.Client
	ownHC     bool
	probeStop context.CancelFunc
	probeDone chan struct{}
	closed    atomic.Bool
}

// New builds a Router over a validated manifest and starts the background
// health prober (unless ProbeInterval is negative).
func New(m *Manifest, cfg Config) (*Router, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r := &Router{manifest: m, cfg: cfg, hc: cfg.HTTPClient, probeDone: make(chan struct{})}
	if r.hc == nil {
		r.hc = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 32}}
		r.ownHC = true
	}
	r.sets = newPool(m, r.hc)
	r.rec = obs.NewFlightRecorder(cfg.NodeID, cfg.TraceDepth, cfg.TraceSlowFactor,
		func(now time.Time) int64 {
			return clusterSearchHist.WindowSnapshot(now).Quantile(0.99)
		})
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("/v1/search", r.handleSearch)
	r.mux.HandleFunc("/v1/search_batch", r.handleSearchBatch)
	r.mux.HandleFunc("/v1/insert", r.handleInsert)
	r.mux.HandleFunc("/v1/delete", r.handleDelete)
	r.mux.HandleFunc("/v1/stats", r.handleStats)
	r.mux.HandleFunc("/v1/analytics", r.handleAnalytics)
	r.mux.HandleFunc("/v1/debug/traces", r.handleDebugTraces)
	r.mux.HandleFunc("/healthz", r.handleHealthz)
	r.mux.HandleFunc("/metrics", r.handleMetrics)
	probeCtx, cancel := context.WithCancel(context.Background())
	r.probeStop = cancel
	if cfg.ProbeInterval > 0 {
		go r.prober(probeCtx)
	} else {
		close(r.probeDone)
	}
	return r, nil
}

// Handler returns the router's API handler, mountable on any http.Server.
func (r *Router) Handler() http.Handler { return r.mux }

// Manifest returns the topology the router was formed with.
func (r *Router) Manifest() *Manifest { return r.manifest }

// Close stops the health prober and tears down the router's own connection
// pool. It does not touch the shards.
func (r *Router) Close() {
	if r.closed.Swap(true) {
		return
	}
	r.probeStop()
	<-r.probeDone
	if r.ownHC {
		if t, ok := r.hc.Transport.(*http.Transport); ok {
			t.CloseIdleConnections()
		}
	}
}

// Stats snapshots the router-local counters; per-node attribution is only
// gathered on the /v1/stats endpoint, which fetches every replica.
func (r *Router) Stats() apknn.ClusterStats {
	healthy := 0
	for _, set := range r.sets {
		healthy += set.healthyCount()
	}
	return apknn.ClusterStats{
		Shards:        len(r.sets),
		Replicas:      r.manifest.NumReplicas(),
		Healthy:       healthy,
		Searches:      r.ctrs.searches.Load(),
		BatchSearches: r.ctrs.batchSearches.Load(),
		Inserts:       r.ctrs.inserts.Load(),
		Deletes:       r.ctrs.deletes.Load(),
		ShardCalls:    r.ctrs.shardCalls.Load(),
		Hedges:        r.ctrs.hedges.Load(),
		HedgeWins:     r.ctrs.hedgeWins.Load(),
		Failovers:     r.ctrs.failovers.Load(),
		Retries:       r.ctrs.retries.Load(),
		Ejected:       r.ctrs.ejected.Load(),
		Readmitted:    r.ctrs.readmitted.Load(),
	}
}

func (r *Router) retryPolicy() serve.RetryPolicy {
	p := r.cfg.Retry
	userHook := p.OnRetry
	p.OnRetry = func(attempt int, err error, wait time.Duration) {
		r.ctrs.retries.Add(1)
		if userHook != nil {
			userHook(attempt, err, wait)
		}
	}
	return p
}

// replicaRetriable reports whether err is worth re-sending to a different
// replica: transport-level failures (the node is unreachable) and 5xx/429
// answers. Caller mistakes (4xx) fail the same way everywhere, and our own
// context expiry is nobody's fault.
func replicaRetriable(err error) bool {
	var apiErr *serve.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500 || apiErr.Status == http.StatusTooManyRequests
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// transportFailure reports whether err means the replica never answered at
// all — the only failure that ejects it from the healthy set; a replica
// that answered, even with an error, is alive.
func transportFailure(err error) bool {
	var apiErr *serve.APIError
	return !errors.As(err, &apiErr) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// attemptResult is one replica's answer to one shard leg.
type attemptResult struct {
	out    interface{}
	err    error
	rep    *replica
	hedged bool
	// span is this attempt's leg span — hedged attempts are sibling spans of
	// the same trace; the winning one gets the winner attr.
	span *obs.Span
	// launched is when this attempt was fired; a winning hedge subtracts the
	// primary's launch from it to report the hedge-win margin.
	launched time.Time
}

// shardCall runs one shard's leg of a scatter with failover and hedging:
// the first candidate replica is fired immediately; if the hedge delay
// expires with no answer (and hedging is enabled), the next candidate gets
// a duplicate request and the first success wins, the loser's context
// canceled. A failed attempt fails over to the next untried replica; each
// replica is tried at most once per leg. Unreachable replicas are ejected
// from the healthy set as a side effect.
func (r *Router) shardCall(ctx context.Context, set *shardSet,
	call func(context.Context, *serve.Client) (interface{}, error)) (interface{}, error) {
	candidates := set.candidates()
	results := make(chan attemptResult, len(candidates))
	actx, cancelAttempts := context.WithCancel(ctx)
	defer cancelAttempts()
	tr := obs.TraceFrom(ctx)
	stage := "shard" + strconv.Itoa(set.shard) + "_leg"
	var primaryLaunch time.Time
	next, inflight := 0, 0
	launch := func(hedged bool) {
		rep := candidates[next]
		next++
		inflight++
		r.ctrs.shardCalls.Add(1)
		set.legs.Add(1)
		launched := time.Now()
		if primaryLaunch.IsZero() {
			primaryLaunch = launched
		}
		// Each attempt is its own child span: hedges become siblings under
		// the request root. The span ID travels upstream in X-Trace-Context,
		// so the shard's own tree can later be stitched under exactly this
		// leg (see handleDebugTraces).
		span := tr.Root().StartChild(stage)
		lctx := actx
		if span != nil {
			spanID := obs.NewSpanID()
			span.SetAttr("span_id", spanID)
			span.SetAttr("replica", rep.addr)
			if hedged {
				span.SetAttr("hedged", "true")
			}
			lctx = obs.WithTraceContext(actx, tr.ID, spanID)
		}
		go func() {
			out, err := call(lctx, rep.client)
			leg := time.Since(launched)
			legHist.Record(leg)
			span.EndIn(leg)
			if err != nil {
				span.SetAttr("error", err.Error())
			} else {
				// Successful legs feed the replica's latency EWMA and its
				// windowed series — the signal candidate ordering and
				// adaptive hedging read. Failures are scored separately
				// (transport penalties below); canceled hedge losers are
				// neither.
				rep.observe(leg, time.Now())
			}
			results <- attemptResult{out: out, err: err, rep: rep, hedged: hedged, span: span, launched: launched}
		}()
	}
	launch(false)
	hedgeDelay := r.cfg.HedgeDelay
	if r.cfg.AdaptiveHedge {
		if d := candidates[0].hedgeDelay(time.Now()); d > 0 {
			hedgeDelay = d
		}
	}
	var hedgeC <-chan time.Time
	if hedgeDelay > 0 && next < len(candidates) {
		timer := time.NewTimer(hedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			if next < len(candidates) {
				r.ctrs.hedges.Add(1)
				launch(true)
			}
		case res := <-results:
			inflight--
			if res.err == nil {
				if next > 1 {
					// More than one attempt flew for this leg — mark which
					// sibling actually answered.
					res.span.SetAttr("winner", "true")
				}
				if res.hedged {
					r.ctrs.hedgeWins.Add(1)
					// The win margin is bounded below by how long the primary
					// had already been in flight when the winner launched.
					hedgeWinHist.RecordNS(int64(res.launched.Sub(primaryLaunch)))
				}
				return res.out, nil
			}
			if transportFailure(res.err) {
				res.rep.penalize(time.Now())
				if res.rep.healthy.Swap(false) {
					r.ctrs.ejected.Add(1)
					r.logHealth("replica ejected", res.rep, res.err)
				}
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if !replicaRetriable(res.err) {
				return nil, res.err
			}
			if next < len(candidates) {
				r.ctrs.failovers.Add(1)
				launch(false)
			} else if inflight == 0 {
				return nil, fmt.Errorf("cluster: shard %d: every replica failed: %w", set.shard, firstErr)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// scatter runs one leg per shard concurrently and returns the per-shard
// results in shard order, failing if any shard fails — exactness requires
// every partition's answer, so a shard with no reachable replica fails the
// query rather than silently narrowing it.
func (r *Router) scatter(ctx context.Context,
	call func(context.Context, *serve.Client) (interface{}, error)) ([]interface{}, error) {
	outs := make([]interface{}, len(r.sets))
	errs := make([]error, len(r.sets))
	var wg sync.WaitGroup
	for i, set := range r.sets {
		wg.Add(1)
		go func(i int, set *shardSet) {
			defer wg.Done()
			outs[i], errs[i] = r.shardCall(ctx, set, call)
		}(i, set)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

func (r *Router) handleSearch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	sw := serve.NewStatusRecorder(w)
	w = sw
	tr := r.beginTrace(w, req, "router.search")
	defer r.observeRequest(clusterSearchHist, tr, start, sw)
	var body serve.SearchRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	q, err := apknn.ParseVector(body.Query)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad query vector: "+err.Error())
		return
	}
	if r.cfg.Dim > 0 && q.Dim() != r.cfg.Dim {
		serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf(
			"query has %d bits, cluster serves %d: %v", q.Dim(), r.cfg.Dim, apknn.ErrDimMismatch))
		return
	}
	k := body.K
	if k == 0 {
		k = r.cfg.DefaultK
	}
	if k < 0 {
		serve.WriteError(w, http.StatusBadRequest, apknn.ErrBadK.Error())
		return
	}
	// The caller's request ID and the span recorder ride the context: every
	// scatter leg forwards the ID upstream and observes its duration.
	ctx := obs.WithTrace(obs.WithRequestID(req.Context(), tr.ID), tr)
	if body.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	r.ctrs.searches.Add(1)
	// Over-fetch k from every shard: each shard's exact local top-k is a
	// superset of its contribution to the global top-k, so the merge below
	// is byte-identical to a single index over the union.
	shardReq := serve.SearchRequest{Query: body.Query, K: k}
	outs, err := r.scatter(ctx, func(ctx context.Context, c *serve.Client) (interface{}, error) {
		var out serve.SearchResponse
		if err := c.DoRetry(ctx, http.MethodPost, "/v1/search", shardReq, &out, r.retryPolicy()); err != nil {
			return nil, err
		}
		return &out, nil
	})
	if err != nil {
		serve.WriteError(w, clusterStatus(err), err.Error())
		return
	}
	msp := tr.Root().StartChild("merge")
	var merged []apknn.Neighbor
	maxFlush := 0
	for i, out := range outs {
		resp := out.(*serve.SearchResponse)
		if resp.FlushSize > maxFlush {
			maxFlush = resp.FlushSize
		}
		merged = knn.MergeTopK(merged, r.toGlobal(i, resp.Neighbors), k)
	}
	msp.End()
	serve.WriteJSON(w, http.StatusOK, serve.SearchResponse{
		Neighbors: toWire(merged),
		FlushSize: maxFlush,
	})
}

func (r *Router) handleSearchBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body serve.SearchBatchRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	start := time.Now()
	sw := serve.NewStatusRecorder(w)
	w = sw
	tr := r.beginTrace(w, req, "router.search_batch")
	defer r.observeRequest(clusterSearchBatchHist, tr, start, sw)
	if len(body.Queries) == 0 {
		serve.WriteError(w, http.StatusBadRequest, "empty query batch")
		return
	}
	for i, qs := range body.Queries {
		q, err := apknn.ParseVector(qs)
		if err != nil {
			serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad query vector %d: %v", i, err))
			return
		}
		if r.cfg.Dim > 0 && q.Dim() != r.cfg.Dim {
			serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf(
				"query %d has %d bits, cluster serves %d: %v", i, q.Dim(), r.cfg.Dim, apknn.ErrDimMismatch))
			return
		}
	}
	k := body.K
	if k == 0 {
		k = r.cfg.DefaultK
	}
	if k < 0 {
		serve.WriteError(w, http.StatusBadRequest, apknn.ErrBadK.Error())
		return
	}
	r.ctrs.batchSearches.Add(1)
	shardReq := serve.SearchBatchRequest{Queries: body.Queries, K: k}
	bctx := obs.WithTrace(obs.WithRequestID(req.Context(), tr.ID), tr)
	outs, err := r.scatter(bctx, func(ctx context.Context, c *serve.Client) (interface{}, error) {
		var out serve.SearchBatchResponse
		if err := c.DoRetry(ctx, http.MethodPost, "/v1/search_batch", shardReq, &out, r.retryPolicy()); err != nil {
			return nil, err
		}
		return &out, nil
	})
	if err != nil {
		serve.WriteError(w, clusterStatus(err), err.Error())
		return
	}
	msp := tr.Root().StartChild("merge")
	merged := make([][]apknn.Neighbor, len(body.Queries))
	for i, out := range outs {
		resp := out.(*serve.SearchBatchResponse)
		if len(resp.Neighbors) != len(body.Queries) {
			msp.End()
			serve.WriteError(w, http.StatusBadGateway, fmt.Sprintf(
				"cluster: shard %d answered %d result sets for %d queries", i, len(resp.Neighbors), len(body.Queries)))
			return
		}
		for qi, ns := range resp.Neighbors {
			merged[qi] = knn.MergeTopK(merged[qi], r.toGlobal(i, ns), k)
		}
	}
	msp.End()
	out := serve.SearchBatchResponse{Neighbors: make([][]serve.Neighbor, len(merged))}
	for qi, ns := range merged {
		out.Neighbors[qi] = toWire(ns)
	}
	serve.WriteJSON(w, http.StatusOK, out)
}

// toGlobal converts one shard's wire neighbors to engine form with global
// IDs (local + shard base).
func (r *Router) toGlobal(shard int, ws []serve.Neighbor) []apknn.Neighbor {
	base := r.sets[shard].base
	out := make([]apknn.Neighbor, len(ws))
	for i, w := range ws {
		out[i] = apknn.Neighbor{ID: w.ID + base, Dist: w.Dist}
	}
	return out
}

func toWire(ns []apknn.Neighbor) []serve.Neighbor {
	out := make([]serve.Neighbor, len(ns))
	for i, n := range ns {
		out[i] = serve.Neighbor{ID: n.ID, Dist: n.Dist}
	}
	return out
}

// ReplicaError reports one replica's failure inside a best-effort mutation.
type ReplicaError struct {
	Addr  string `json:"addr"`
	Error string `json:"error"`
}

// InsertResponse answers POST /v1/insert through the router: the global ID
// assigned by the tail shard plus the quorum-less per-replica outcome.
type InsertResponse struct {
	// ID is the global ID (tail shard base + the node-local ID).
	ID int `json:"id"`
	// Shard is the owning shard the insert was routed to (always the tail).
	Shard int `json:"shard"`
	// Replicas and Acked count the shard's replica set and how many
	// accepted the write.
	Replicas int `json:"replicas"`
	Acked    int `json:"acked"`
	// ReplicaErrors lists the replicas that did not ack; those nodes have
	// diverged until repaired out of band.
	ReplicaErrors []ReplicaError `json:"replica_errors,omitempty"`
}

// DeleteResponse answers POST /v1/delete through the router.
type DeleteResponse struct {
	ID            int            `json:"id"`
	Deleted       bool           `json:"deleted"`
	Shard         int            `json:"shard"`
	Replicas      int            `json:"replicas"`
	Acked         int            `json:"acked"`
	ReplicaErrors []ReplicaError `json:"replica_errors,omitempty"`
}

// StatsResponse answers GET /v1/stats on the router.
type StatsResponse struct {
	Cluster apknn.ClusterStats `json:"cluster"`
	// Latency maps stable metric names (the same ones GET /metrics exports)
	// to quantile summaries; metrics with no samples yet are omitted.
	Latency map[string]apknn.LatencySummary `json:"latency,omitempty"`
	// LatencyWindow is the same map over roughly the last minute (6×10s
	// rotating window); metrics with no samples in the window are omitted.
	LatencyWindow map[string]apknn.LatencySummary `json:"latency_1m,omitempty"`
}

// broadcastOutcome is one replica's answer to a best-effort write.
type broadcastOutcome struct {
	rep *replica
	id  int
	err error
}

// broadcast sends one mutation to every replica of a shard concurrently —
// quorum-less best-effort: the caller decides what any mix of acks and
// errors means. Unreachable replicas are ejected.
func (r *Router) broadcast(ctx context.Context, set *shardSet,
	do func(context.Context, *serve.Client) (int, error)) []broadcastOutcome {
	outs := make([]broadcastOutcome, len(set.replicas))
	var wg sync.WaitGroup
	for i, rep := range set.replicas {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			id, err := do(ctx, rep.client)
			if err != nil && transportFailure(err) {
				if rep.healthy.Swap(false) {
					r.ctrs.ejected.Add(1)
					r.logHealth("replica ejected", rep, err)
				}
			}
			outs[i] = broadcastOutcome{rep: rep, id: id, err: err}
		}(i, rep)
	}
	wg.Wait()
	return outs
}

// handleInsert routes a live insert to the tail shard — the one owning the
// open end of the global ID range — and writes it to every replica.
func (r *Router) handleInsert(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body serve.InsertRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	v, err := apknn.ParseVector(body.Vector)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad vector: "+err.Error())
		return
	}
	if r.cfg.Dim > 0 && v.Dim() != r.cfg.Dim {
		serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf(
			"vector has %d bits, cluster serves %d: %v", v.Dim(), r.cfg.Dim, apknn.ErrDimMismatch))
		return
	}
	set := r.sets[len(r.sets)-1]
	// One insert broadcast at a time per shard, so every replica assigns
	// the same local ID to the same vector (see shardSet.insertMu). Writes
	// through other routers can still interleave — the single-writer
	// deployment is the supported one.
	set.insertMu.Lock()
	outs := r.broadcast(req.Context(), set, func(ctx context.Context, c *serve.Client) (int, error) {
		return c.Insert(ctx, v)
	})
	set.insertMu.Unlock()
	resp := InsertResponse{ID: -1, Shard: set.shard, Replicas: len(set.replicas)}
	var firstErr error
	for _, out := range outs {
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			resp.ReplicaErrors = append(resp.ReplicaErrors, ReplicaError{Addr: out.rep.addr, Error: out.err.Error()})
			continue
		}
		resp.Acked++
		if resp.ID < 0 {
			resp.ID = set.base + out.id
		}
	}
	if resp.Acked == 0 {
		serve.WriteError(w, clusterStatus(firstErr), firstErr.Error())
		return
	}
	r.ctrs.inserts.Add(1)
	serve.WriteJSON(w, http.StatusOK, resp)
}

// handleDelete routes a live delete to the shard owning the global ID and
// tombstones it on every replica.
func (r *Router) handleDelete(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body serve.DeleteRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	owner := r.manifest.Owner(body.ID)
	if owner < 0 {
		serve.WriteError(w, http.StatusNotFound, fmt.Sprintf("cluster: no shard owns ID %d: %v", body.ID, apknn.ErrNotFound))
		return
	}
	set := r.sets[owner]
	local := body.ID - set.base
	outs := r.broadcast(req.Context(), set, func(ctx context.Context, c *serve.Client) (int, error) {
		return 0, c.Delete(ctx, local)
	})
	resp := DeleteResponse{ID: body.ID, Shard: owner, Replicas: len(set.replicas)}
	var firstErr error
	for _, out := range outs {
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			resp.ReplicaErrors = append(resp.ReplicaErrors, ReplicaError{Addr: out.rep.addr, Error: out.err.Error()})
			continue
		}
		resp.Acked++
	}
	if resp.Acked == 0 {
		serve.WriteError(w, clusterStatus(firstErr), firstErr.Error())
		return
	}
	resp.Deleted = true
	r.ctrs.deletes.Add(1)
	serve.WriteJSON(w, http.StatusOK, resp)
}

// handleStats aggregates ClusterStats: the router's own counters plus a
// per-node block fetched live from every replica's /v1/stats.
func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		serve.WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := r.Stats()
	st.PerNode = r.perNode(req.Context())
	serve.WriteJSON(w, http.StatusOK, StatsResponse{
		Cluster:       st,
		Latency:       serve.LatencySummaries(),
		LatencyWindow: serve.WindowLatencySummaries(time.Now()),
	})
}

// routerAnalyticsTopK is how many merged hot queries the router reports —
// the same depth each node reports, so the merge never widens the answer.
const routerAnalyticsTopK = 10

// ShardAnalytics is one shard's heat block inside the router's aggregated
// /v1/analytics answer. Exactly one replica answers per shard (with the
// usual failover); its NodeInfo inside Analytics attributes the numbers.
type ShardAnalytics struct {
	Shard int `json:"shard"`
	// Analytics is the answering replica's own /v1/analytics block; nil
	// when every replica failed (see Error).
	Analytics *serve.AnalyticsResponse `json:"analytics,omitempty"`
	// Error reports a shard whose replicas all failed, instead of failing
	// the whole aggregation — analytics is advisory, not exact.
	Error string `json:"error,omitempty"`
}

// AnalyticsResponse answers GET /v1/analytics on the router: the per-shard
// heat blocks plus a cluster-wide merge of the hot-query lists.
type AnalyticsResponse struct {
	// QueriesObserved sums the reachable shards' heat-tracker totals.
	QueriesObserved uint64 `json:"queries_observed"`
	// TopQueries is the cluster-wide hot-query merge: per-shard counts
	// summed by key, count-descending. Error bounds add up too, so the
	// merged Err stays a valid overcount bound.
	TopQueries []serve.HotQuery `json:"top_queries"`
	// Shards holds each shard's own block, for load-imbalance comparison.
	Shards []ShardAnalytics `json:"shards"`
}

// handleAnalytics aggregates query-heat analytics: one replica per shard is
// asked (failover included), the per-shard blocks are returned verbatim,
// and the top-k lists are merged into a cluster-wide ranking.
func (r *Router) handleAnalytics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		serve.WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := AnalyticsResponse{Shards: make([]ShardAnalytics, len(r.sets))}
	var wg sync.WaitGroup
	for i, set := range r.sets {
		wg.Add(1)
		go func(i int, set *shardSet) {
			defer wg.Done()
			line := &out.Shards[i]
			line.Shard = set.shard
			sctx, cancel := context.WithTimeout(req.Context(), statsTimeout)
			defer cancel()
			res, err := r.shardCall(sctx, set, func(ctx context.Context, c *serve.Client) (interface{}, error) {
				return c.Analytics(ctx)
			})
			if err != nil {
				line.Error = err.Error()
				return
			}
			line.Analytics = res.(*serve.AnalyticsResponse)
		}(i, set)
	}
	wg.Wait()
	var lists [][]heat.Entry
	for i := range out.Shards {
		an := out.Shards[i].Analytics
		if an == nil {
			continue
		}
		out.QueriesObserved += an.QueriesObserved
		entries := make([]heat.Entry, len(an.TopQueries))
		for j, hq := range an.TopQueries {
			entries[j] = heat.Entry{Key: hq.Key, Count: hq.Count, Err: hq.Err}
		}
		lists = append(lists, entries)
	}
	for _, e := range heat.MergeTop(routerAnalyticsTopK, lists...) {
		out.TopQueries = append(out.TopQueries, serve.HotQuery{Key: e.Key, Count: e.Count, Err: e.Err})
	}
	serve.WriteJSON(w, http.StatusOK, out)
}

// perNode fetches every replica's stats concurrently; a node that cannot be
// reached gets an Error line instead of failing the aggregation.
func (r *Router) perNode(ctx context.Context) []apknn.NodeStats {
	var out []apknn.NodeStats
	var reps []*replica
	for _, set := range r.sets {
		for _, rep := range set.replicas {
			out = append(out, apknn.NodeStats{
				Shard:   set.shard,
				Base:    set.base,
				Addr:    rep.addr,
				Healthy: rep.healthy.Load(),
			})
			reps = append(reps, rep)
		}
	}
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(rep *replica, line *apknn.NodeStats) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, statsTimeout)
			defer cancel()
			st, err := rep.client.Stats(sctx)
			if err != nil {
				line.Error = err.Error()
				return
			}
			line.Queries = st.Backend.Queries
			line.Batches = st.Backend.Batches
			line.ModeledTimeNS = st.ModeledTimeNS
			if st.Node != nil {
				line.NodeID = st.Node.ID
				line.Vectors = st.Node.Vectors
				line.UptimeNS = st.Node.UptimeNS
			}
		}(rep, &out[i])
	}
	wg.Wait()
	return out
}

// handleHealthz answers 200 while every shard has at least one healthy
// replica, 503 "degraded" otherwise — a load balancer in front of several
// routers can use it directly.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		serve.WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	status, code := "ok", http.StatusOK
	for _, set := range r.sets {
		if set.healthyCount() == 0 {
			status, code = fmt.Sprintf("degraded: shard %d has no healthy replica", set.shard), http.StatusServiceUnavailable
			break
		}
	}
	serve.WriteJSON(w, code, serve.HealthResponse{
		Status:  status,
		Backend: "cluster",
		Boards:  len(r.sets),
	})
}

// clusterStatus maps a shard-leg error onto the router's response status:
// an upstream API answer passes through, expiry is 504, and anything
// transport-level is 502.
func clusterStatus(err error) int {
	var apiErr *serve.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadGateway
}
