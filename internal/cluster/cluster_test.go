package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	apknn "repro"
	"repro/internal/cluster"
	"repro/internal/serve"
)

// testNode is one in-process apserve instance: the serving layer plus its
// HTTP listener.
type testNode struct {
	srv *serve.Server
	ts  *httptest.Server
}

// testCluster is a full in-process cluster: shards × replicas serving
// nodes, a manifest, and a router in front.
type testCluster struct {
	router *cluster.Router
	ts     *httptest.Server // the router's listener
	client *serve.Client    // talks to the router
	nodes  [][]*testNode    // [shard][replica]
	bases  []int
}

// bootCluster partitions ds into contiguous shards, boots replicas-per
// serving nodes per shard (every replica of a shard holds the identical
// partition), and mounts a router over them. wrap, when non-nil, decorates
// each node's handler for fault injection.
func bootCluster(t *testing.T, ds *apknn.Dataset, shards, replicas int, live bool,
	ccfg cluster.Config, wrap func(shard, rep int, h http.Handler) http.Handler) *testCluster {
	t.Helper()
	n := ds.Len()
	chunk := (n + shards - 1) / shards
	m := &cluster.Manifest{}
	tc := &testCluster{}
	for s := 0; s < shards; s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			t.Fatalf("shard %d would be empty (n=%d, shards=%d)", s, n, shards)
		}
		part := ds.Slice(lo, hi)
		sh := cluster.Shard{Base: lo}
		var reps []*testNode
		for rep := 0; rep < replicas; rep++ {
			var idx apknn.Index
			var err error
			if live {
				idx, err = apknn.OpenLive(part, apknn.WithBackend(apknn.Fast), apknn.WithCompactThreshold(-1))
			} else {
				idx, err = apknn.Open(part, apknn.WithBackend(apknn.Fast))
			}
			if err != nil {
				t.Fatal(err)
			}
			srv := serve.New(idx, serve.Config{
				Dim:         ds.Dim(),
				NodeID:      fmt.Sprintf("shard%d-%c", s, 'a'+rep),
				Vectors:     part.Len(),
				MaxInFlight: 1024,
			})
			h := http.Handler(srv.Handler())
			if wrap != nil {
				h = wrap(s, rep, h)
			}
			node := &testNode{srv: srv, ts: httptest.NewServer(h)}
			t.Cleanup(func() {
				node.ts.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := node.srv.Close(ctx); err != nil {
					t.Errorf("node close: %v", err)
				}
			})
			reps = append(reps, node)
			sh.Replicas = append(sh.Replicas, node.ts.URL)
		}
		tc.nodes = append(tc.nodes, reps)
		tc.bases = append(tc.bases, lo)
		m.Shards = append(m.Shards, sh)
	}
	if ccfg.ProbeInterval == 0 {
		ccfg.ProbeInterval = -1 // probes are driven explicitly in tests
	}
	if ccfg.Dim == 0 {
		ccfg.Dim = ds.Dim()
	}
	router, err := cluster.New(m, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = router
	tc.ts = httptest.NewServer(router.Handler())
	tc.client = &serve.Client{BaseURL: tc.ts.URL}
	t.Cleanup(func() {
		tc.ts.Close()
		router.Close()
	})
	return tc
}

// TestClusterMergeEquivalence is the acceptance property: the router's
// top-k over N shards is byte-identical — ties included — to a single
// index opened over the concatenated dataset, across dimensionalities,
// shard counts, and k values that exceed individual shard sizes. Small
// dimensionalities force heavy distance ties, so any tie-break divergence
// between the host-side cluster merge and the single-node path fails here.
func TestClusterMergeEquivalence(t *testing.T) {
	const nq = 12
	for _, dim := range []int{32, 128} {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("dim%d/shards%d", dim, shards), func(t *testing.T) {
				n := 600 + 13*shards // ragged last partition
				ds := apknn.RandomDataset(uint64(1000*dim+shards), n, dim)
				tc := bootCluster(t, ds, shards, 1, false, cluster.Config{}, nil)
				oracle, err := apknn.Open(ds, apknn.WithBackend(apknn.Fast))
				if err != nil {
					t.Fatal(err)
				}
				queries := apknn.RandomQueries(uint64(2000*dim+shards), nq, dim)
				ctx := context.Background()
				for _, k := range []int{1, 10, n/shards + 7} {
					exact, err := oracle.Search(ctx, queries, k)
					if err != nil {
						t.Fatal(err)
					}
					for qi, q := range queries {
						resp, err := tc.client.Search(ctx, q, k)
						if err != nil {
							t.Fatalf("k=%d query %d: %v", k, qi, err)
						}
						got := serve.Neighbors(resp.Neighbors)
						if len(got) != len(exact[qi]) {
							t.Fatalf("k=%d query %d: %d neighbors, want %d", k, qi, len(got), len(exact[qi]))
						}
						for j := range got {
							if got[j] != exact[qi][j] {
								t.Fatalf("k=%d query %d rank %d: %+v, want %+v", k, qi, j, got[j], exact[qi][j])
							}
						}
					}
					// The batch endpoint scatters the whole batch per shard;
					// its merge must agree too.
					batch, err := tc.client.SearchBatch(ctx, queries, k)
					if err != nil {
						t.Fatalf("k=%d batch: %v", k, err)
					}
					for qi := range queries {
						if len(batch[qi]) != len(exact[qi]) {
							t.Fatalf("k=%d batch query %d: %d neighbors, want %d", k, qi, len(batch[qi]), len(exact[qi]))
						}
						for j := range batch[qi] {
							if batch[qi][j] != exact[qi][j] {
								t.Fatalf("k=%d batch query %d rank %d: %+v, want %+v",
									k, qi, j, batch[qi][j], exact[qi][j])
							}
						}
					}
				}
			})
		}
	}
}
