package apknn_test

import (
	"context"
	"sync"
	"testing"

	apknn "repro"
)

// TestConcurrentServingIsRaceFree hammers one long-lived Index — the shape
// apserve holds for the life of the process — from parallel goroutines
// mixing Search, SearchBatch, Stats, and ModeledTime. Under -race this
// locks in that the counters/Stats snapshot path and the shard engine's
// modeled-cost meters tolerate concurrent readers while queries are in
// flight; the results themselves must stay byte-identical to the exact
// scan throughout.
func TestConcurrentServingIsRaceFree(t *testing.T) {
	const (
		n, dim, k = 4096, 64, 5
		clients   = 8
		rounds    = 6
	)
	ds := apknn.RandomDataset(61, n, dim)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Sharded), apknn.WithBoards(4))
	if err != nil {
		t.Fatal(err)
	}
	queries := apknn.RandomQueries(62, clients, dim)
	exact := apknn.ExactSearch(ds, queries, k, 4)
	ctx := context.Background()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := []apknn.Vector{queries[c]}
			for r := 0; r < rounds; r++ {
				switch r % 3 {
				case 0: // single-batch Search
					res, err := idx.Search(ctx, mine, k)
					if err != nil {
						t.Errorf("client %d round %d: %v", c, r, err)
						return
					}
					for j := range exact[c] {
						if res[0][j] != exact[c][j] {
							t.Errorf("client %d round %d rank %d: %+v, want %+v",
								c, r, j, res[0][j], exact[c][j])
							return
						}
					}
				case 1: // pipelined SearchBatch
					for out := range idx.SearchBatch(ctx, [][]apknn.Vector{mine, mine}, k) {
						if out.Err != nil {
							t.Errorf("client %d round %d batch %d: %v", c, r, out.Batch, out.Err)
							return
						}
						for j := range exact[c] {
							if out.Results[0][j] != exact[c][j] {
								t.Errorf("client %d round %d batch %d diverged", c, r, out.Batch)
								return
							}
						}
					}
				case 2: // snapshot readers racing the writers above
					st := idx.Stats()
					if st.Backend != apknn.Sharded || st.Boards != 4 {
						t.Errorf("client %d round %d: snapshot %+v", c, r, st)
						return
					}
					_ = idx.ModeledTime()
				}
			}
		}(c)
	}
	wg.Wait()

	// Monotonic totals survive the storm: every goroutine's queries are
	// accounted exactly once.
	st := idx.Stats()
	wantQueries := int64(0)
	for c := 0; c < clients; c++ {
		for r := 0; r < rounds; r++ {
			switch r % 3 {
			case 0:
				wantQueries++
			case 1:
				wantQueries += 2
			}
		}
	}
	if st.Queries != wantQueries {
		t.Errorf("Queries = %d, want %d", st.Queries, wantQueries)
	}
	if st.SymbolsStreamed <= 0 || st.Reconfigs <= 0 {
		t.Errorf("modeled meters empty after load: %+v", st)
	}
}
