package apknn

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/aperr"
	"repro/internal/knn"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

func init() {
	mustRegister(backendFunc{CPU, func(ds *Dataset, cfg Config) (Index, error) {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		return &cpuIndex{ds: ds, workers: workers, platform: perfmodel.XeonE5()}, nil
	}})
}

// cpuIndex is the exact CPU baseline (§IV-C), served by the blocked parallel
// Hamming kernel (internal/knn's Scan/ScanBatch): cache-blocked XOR+POPCNT
// over the packed-word slab with bounded per-core heaps merged through
// MergeTopK. Large batches parallelize across queries; small batches — a
// single query included — parallelize across the dataset, so one query uses
// every worker instead of one core. Modeled time still charges the
// calibrated Xeon E5 pair-cost model per batch, keeping the paper-comparable
// meter independent of this machine.
type cpuIndex struct {
	ds       *Dataset
	workers  int
	platform perfmodel.Platform
	ctrs     counters
	modeled  atomic.Int64 // nanoseconds
	pairs    atomic.Int64
}

func (c *cpuIndex) Search(ctx context.Context, queries []Vector, k int) ([][]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cpu: got k=%d: %w", k, aperr.ErrBadK)
	}
	for i, q := range queries {
		if q.Dim() != c.ds.Dim() {
			return nil, fmt.Errorf("cpu: query %d dim %d != dataset dim %d: %w", i, q.Dim(), c.ds.Dim(), aperr.ErrDimMismatch)
		}
	}
	// The kernel itself is trace-free (per-candidate hot path); one span
	// around the whole scan is all a trace needs. Nil-safe no-op when the
	// context carries no trace.
	ksp := obs.StartSpan(ctx, "kernel_scan")
	res, err := knn.ScanBatch(ctx, c.ds, queries, k, knn.ScanConfig{Workers: c.workers})
	ksp.End()
	if err != nil {
		return nil, err
	}
	c.ctrs.countSearch(len(queries))
	c.modeled.Add(int64(perfmodel.CPUTime(c.platform, c.ds.Len(), len(queries), c.ds.Dim())))
	c.pairs.Add(int64(c.ds.Len()) * int64(len(queries)))
	return res, nil
}

func (c *cpuIndex) SearchBatch(ctx context.Context, batches [][]Vector, k int) <-chan BatchResult {
	return sequentialBatches(ctx, batches, k, c.Search)
}

func (c *cpuIndex) ModeledTime() time.Duration { return time.Duration(c.modeled.Load()) }

func (c *cpuIndex) Stats() Stats {
	st := c.ctrs.snapshot(CPU)
	st.Boards = 1
	st.CandidatesScanned = c.pairs.Load()
	return st
}
