// Package apknn is the public API of this reproduction of "Similarity Search
// on Automata Processors" (Lee et al., IPDPS 2017): k-nearest-neighbor
// similarity search over binary codes executed as nondeterministic finite
// automata on a simulated Micron Automata Processor.
//
// The package ties together the internal substrates — the cycle-accurate AP
// simulator, the kNN automata generators, the partial-reconfiguration
// engine, the quantization pipeline and the exact CPU baselines — behind a
// small searcher interface:
//
//	ds := apknn.RandomDataset(seed, n, dim)
//	s, err := apknn.NewSearcher(ds, apknn.Options{})
//	results, err := s.Query(queries, k)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-reproduced audit of every table and figure.
package apknn

import (
	"fmt"
	"time"

	"repro/internal/ap"
	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/quantize"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Vector is a packed binary feature vector.
type Vector = bitvec.Vector

// Dataset is a collection of equal-dimensionality vectors.
type Dataset = bitvec.Dataset

// Neighbor is one search result: dataset ID and Hamming distance.
type Neighbor = knn.Neighbor

// Generation selects the AP hardware generation being modeled. The zero
// value means Gen2, the sensible default for new work.
type Generation int

const (
	// Gen1 is the evaluated current-generation board (45 ms reconfiguration).
	Gen1 Generation = 1
	// Gen2 is the projected board with ~100x faster reconfiguration.
	Gen2 Generation = 2
)

// Options configures a Searcher.
type Options struct {
	// Generation of the modeled board (default Gen2).
	Generation Generation
	// Capacity overrides vectors per board configuration (default: the
	// paper's §V-A capacities — 1024 for d <= 128, 512 above).
	Capacity int
	// Exact switches to the semantics-equivalent fast engine, which returns
	// identical results without cycle-accurate simulation. Use it for large
	// datasets; the default simulator engine exercises the real automata.
	Exact bool
	// Boards shards the dataset across this many simulated boards (default
	// 1). Each board owns a disjoint slice of the dataset, all boards
	// stream every query batch concurrently, and the host merges their
	// top-k lists — so results are identical to a single board while the
	// modeled time becomes the maximum across boards instead of the sum
	// over the configuration sweep.
	Boards int
	// Workers bounds how many boards stream concurrently (default: one
	// worker per board).
	Workers int
}

// BatchResult is one completed batch of an asynchronous QueryBatch call.
type BatchResult = shard.BatchResult

// Searcher answers kNN queries against a fixed dataset using the paper's
// automata design. It is safe for concurrent use.
type Searcher struct {
	engine *shard.Engine
	dim    int
}

// NewSearcher builds the kNN automata for ds and precompiles its board
// images.
func NewSearcher(ds *Dataset, opts Options) (*Searcher, error) {
	cfg := ap.Gen2()
	if opts.Generation == Gen1 {
		cfg = ap.Gen1()
	}
	eng, err := shard.New(ds, shard.Options{
		Boards:   opts.Boards,
		Workers:  opts.Workers,
		Capacity: opts.Capacity,
		Fast:     opts.Exact,
		Config:   cfg,
	})
	if err != nil {
		return nil, err
	}
	return &Searcher{engine: eng, dim: ds.Dim()}, nil
}

// Query returns the k nearest neighbors of each query, (distance, ID)-sorted
// with deterministic tie-breaks.
func (s *Searcher) Query(queries []Vector, k int) ([][]Neighbor, error) {
	return s.engine.Query(queries, k)
}

// QueryBatch answers many query batches asynchronously, pipelining query
// encoding against board streaming and report decoding. Results arrive on
// the returned channel in submission order; the channel closes after the
// last batch. Multiple goroutines may call QueryBatch (and Query)
// concurrently on one Searcher.
func (s *Searcher) QueryBatch(batches [][]Vector, k int) <-chan BatchResult {
	return s.engine.QueryBatch(batches, k)
}

// Partitions reports how many board configurations the dataset spans.
func (s *Searcher) Partitions() int { return s.engine.Partitions() }

// Boards reports how many boards the dataset is sharded across.
func (s *Searcher) Boards() int { return s.engine.Shards() }

// ModeledTime returns the modeled AP wall-clock estimate (streaming at
// 133 MHz plus partial reconfigurations), taken as the maximum across
// boards since they stream concurrently. The exact engine charges the same
// analytic model.
func (s *Searcher) ModeledTime() time.Duration {
	return s.engine.ModeledTime()
}

// ExactSearch is the CPU reference: an exact multi-threaded linear scan.
func ExactSearch(ds *Dataset, queries []Vector, k, workers int) [][]Neighbor {
	return knn.Batch(ds, queries, k, workers)
}

// Recall returns |got ∩ exact| / |exact| by vector ID.
func Recall(got, exact []Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	ids := make(map[int]bool, len(got))
	for _, n := range got {
		ids[n.ID] = true
	}
	hit := 0
	for _, n := range exact {
		if ids[n.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// RandomDataset generates n uniform binary vectors of the given
// dimensionality, deterministically from seed.
func RandomDataset(seed uint64, n, dim int) *Dataset {
	return bitvec.RandomDataset(stats.NewRNG(seed), n, dim)
}

// RandomQueries generates q uniform queries.
func RandomQueries(seed uint64, q, dim int) []Vector {
	rng := stats.NewRNG(seed)
	out := make([]Vector, q)
	for i := range out {
		out[i] = bitvec.Random(rng, dim)
	}
	return out
}

// QuantizeITQ trains Iterative Quantization on the real-valued training
// vectors and encodes data into a binary dataset of the given code length —
// the offline pipeline the paper assumes (§II-A).
func QuantizeITQ(training, data [][]float64, bits int, seed uint64) (*Dataset, *quantize.ITQ, error) {
	itq, err := quantize.TrainITQ(training, quantize.ITQConfig{Bits: bits}, stats.NewRNG(seed))
	if err != nil {
		return nil, nil, err
	}
	return quantize.EncodeDataset(itq, data), itq, nil
}

// ParseVector parses a "1011"-style bit string.
func ParseVector(s string) (Vector, error) {
	return bitvec.ParseBits(s)
}

// String describes the modeled hardware for display purposes.
func (g Generation) String() string {
	switch g {
	case Gen1:
		return "AP Gen 1"
	case Gen2, 0:
		return "AP Gen 2"
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}
