// Package apknn is the public API of this reproduction of "Similarity Search
// on Automata Processors" (Lee et al., IPDPS 2017): k-nearest-neighbor
// similarity search over binary codes executed as nondeterministic finite
// automata on a simulated Micron Automata Processor, compared against the
// paper's CPU, GPU, FPGA and approximate-indexing baselines.
//
// Every compute platform the paper evaluates is a registered Backend,
// selected through functional options on Open:
//
//	ds := apknn.RandomDataset(seed, n, dim)
//	idx, err := apknn.Open(ds,
//		apknn.WithBackend(apknn.AP),
//		apknn.WithBoards(4),
//		apknn.WithGeneration(apknn.Gen1))
//	results, err := idx.Search(ctx, queries, k)
//
// Search and SearchBatch accept a context.Context whose cancellation aborts
// in-flight board work; failures are typed sentinel errors (ErrDimMismatch,
// ErrEmptyDataset, ErrBadK, ErrCanceled, ErrNotFound) matched with
// errors.Is; Stats returns a serving snapshot. OpenLive returns a mutable
// index instead: Insert/Delete apply immediately through a delta segment
// and tombstone set, and a background compactor folds the churn into fresh
// base compilations. The pre-Backend NewSearcher/Options surface remains as
// a deprecated shim.
//
// See README.md for the system inventory, the backend guide, and the
// paper-vs-reproduced audit of the evaluation tables.
package apknn

import (
	"context"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/quantize"
	"repro/internal/stats"
)

// Vector is a packed binary feature vector.
type Vector = bitvec.Vector

// Dataset is a collection of equal-dimensionality vectors.
type Dataset = bitvec.Dataset

// Neighbor is one search result: dataset ID and Hamming distance.
type Neighbor = knn.Neighbor

// Generation selects the AP hardware generation being modeled. The zero
// value means Gen2, the sensible default for new work.
type Generation int

const (
	// Gen1 is the evaluated current-generation board (45 ms reconfiguration).
	Gen1 Generation = 1
	// Gen2 is the projected board with ~100x faster reconfiguration.
	Gen2 Generation = 2
)

// ExactSearch is the CPU reference: an exact multi-threaded linear scan
// through the blocked Hamming kernel. It panics on invalid arguments (k <= 0
// or a query of the wrong dimensionality) — in the calling goroutine, where
// a recover can catch it, never inside a worker goroutine. Servers and other
// callers handling untrusted input should use ExactSearchContext, which
// returns ErrBadK/ErrDimMismatch instead.
func ExactSearch(ds *Dataset, queries []Vector, k, workers int) [][]Neighbor {
	out, err := knn.Batch(ds, queries, k, workers)
	if err != nil {
		panic(fmt.Sprintf("apknn.ExactSearch: %v", err))
	}
	return out
}

// ExactSearchContext is the error-returning, cancelable form of ExactSearch:
// a non-positive k yields ErrBadK, a mismatched query ErrDimMismatch, and a
// canceled context ErrCanceled, all matchable with errors.Is.
func ExactSearchContext(ctx context.Context, ds *Dataset, queries []Vector, k, workers int) ([][]Neighbor, error) {
	return knn.BatchContext(ctx, ds, queries, k, workers)
}

// Recall returns |got ∩ exact| / |exact| by vector ID.
func Recall(got, exact []Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	ids := make(map[int]bool, len(got))
	for _, n := range got {
		ids[n.ID] = true
	}
	hit := 0
	for _, n := range exact {
		if ids[n.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// RandomDataset generates n uniform binary vectors of the given
// dimensionality, deterministically from seed.
func RandomDataset(seed uint64, n, dim int) *Dataset {
	return bitvec.RandomDataset(stats.NewRNG(seed), n, dim)
}

// RandomQueries generates q uniform queries.
func RandomQueries(seed uint64, q, dim int) []Vector {
	rng := stats.NewRNG(seed)
	out := make([]Vector, q)
	for i := range out {
		out[i] = bitvec.Random(rng, dim)
	}
	return out
}

// QuantizeITQ trains Iterative Quantization on the real-valued training
// vectors and encodes data into a binary dataset of the given code length —
// the offline pipeline the paper assumes (§II-A).
func QuantizeITQ(training, data [][]float64, bits int, seed uint64) (*Dataset, *quantize.ITQ, error) {
	itq, err := quantize.TrainITQ(training, quantize.ITQConfig{Bits: bits}, stats.NewRNG(seed))
	if err != nil {
		return nil, nil, err
	}
	return quantize.EncodeDataset(itq, data), itq, nil
}

// ParseVector parses a "1011"-style bit string.
func ParseVector(s string) (Vector, error) {
	return bitvec.ParseBits(s)
}

// String describes the modeled hardware for display purposes.
func (g Generation) String() string {
	switch g {
	case Gen1:
		return "AP Gen 1"
	case Gen2, 0:
		return "AP Gen 2"
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}
