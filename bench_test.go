// Benchmarks regenerating the paper's evaluation, one per table and figure
// (see README.md's experiment index). Each BenchmarkTableN/BenchmarkFigN
// exercises the code path that reproduces that experiment; the analytic
// table builders print paper-vs-reproduced numbers once per run via the
// bench harness in cmd/apbench. Micro-benchmarks at the bottom measure this
// machine's real throughput for the executable substrates.
package apknn_test

import (
	"context"
	"testing"

	apknn "repro"
	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/gpu"
	"repro/internal/index"
	"repro/internal/knn"
	"repro/internal/perfmodel"
	"repro/internal/quantize"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ---- Table I / II: inventory (model evaluation only) ----

func BenchmarkTable1Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(perfmodel.Platforms()) != 6 {
			b.Fatal("platform table wrong")
		}
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(workload.All()) != 3 {
			b.Fatal("workload table wrong")
		}
	}
}

// ---- Table III: small-dataset kNN across platforms ----

// BenchmarkTable3Model evaluates every analytic cell of Table III.
func BenchmarkTable3Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(perfmodel.Table3()) != 15 {
			b.Fatal("table 3 shape wrong")
		}
	}
}

// BenchmarkTable3APSimulated runs the real cycle-accurate AP engine on a
// scaled-down WordEmbed-small instance (full 1024x4096 is a model-only
// workload; the simulator exercises identical code paths at this scale).
func BenchmarkTable3APSimulated(b *testing.B) {
	ds := apknn.RandomDataset(1, 256, 64)
	queries := apknn.RandomQueries(2, 4, 64)
	s, err := apknn.NewSearcher(ds, apknn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(queries, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3CPUMeasured measures this machine's real Hamming-scan
// throughput at the Table III workload points.
func BenchmarkTable3CPUMeasured(b *testing.B) {
	for _, w := range workload.All() {
		b.Run(w.Name, func(b *testing.B) {
			rng := stats.NewRNG(3)
			ds := bitvec.RandomDataset(rng, w.SmallN, w.Dim)
			q := bitvec.Random(rng, w.Dim)
			b.SetBytes(int64(w.SmallN * w.Dim / 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				knn.Linear(ds, q, w.K)
			}
		})
	}
}

// ---- Table IV: large datasets with partial reconfiguration ----

func BenchmarkTable4Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(perfmodel.Table4()) != 24 {
			b.Fatal("table 4 shape wrong")
		}
	}
}

// BenchmarkTable4Reconfiguration runs the fast engine over a multi-partition
// dataset, the §III-C merging path of Table IV.
func BenchmarkTable4Reconfiguration(b *testing.B) {
	ds := apknn.RandomDataset(4, 1<<14, 64)
	queries := apknn.RandomQueries(5, 16, 64)
	s, err := apknn.NewSearcher(ds, apknn.Options{Exact: true})
	if err != nil {
		b.Fatal(err)
	}
	if s.Partitions() != 16 {
		b.Fatalf("partitions = %d", s.Partitions())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(queries, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table V: spatial indexing structures ----

func BenchmarkTable5Model(b *testing.B) {
	w := workload.TagSpace()
	models := perfmodel.IndexingModels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			perfmodel.IndexingSpeedup(perfmodel.APGen1(), m, w.LargeN, w.Queries, w.Dim)
		}
	}
}

func BenchmarkTable5IndexSearch(b *testing.B) {
	rng := stats.NewRNG(6)
	ds := workload.Clustered(rng, 32, 64, 64, 4)
	q := bitvec.Random(rng, 64)
	kd, err := index.BuildKDForest(ds, index.DefaultKDForestConfig(64), rng)
	if err != nil {
		b.Fatal(err)
	}
	km, err := index.BuildKMeansTree(ds, index.DefaultKMeansConfig(64), rng)
	if err != nil {
		b.Fatal(err)
	}
	lsh, err := index.BuildLSH(ds, index.DefaultLSHConfig(ds.Len(), 64), rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		idx  index.Index
	}{{"KDForest", kd}, {"KMeansTree", km}, {"MPLSH", lsh}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				index.Search(ds, c.idx, q, 16, 8)
			}
		})
	}
}

// ---- Table VI: statistical activation reduction Monte Carlo ----

func BenchmarkTable6Reduction(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    core.SuppressionMode
	}{{"Strict", core.SuppressStrict}, {"Faithful", core.SuppressFaithful}} {
		b.Run(mode.name, func(b *testing.B) {
			rng := stats.NewRNG(7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RunReduction(core.ReductionExperiment{
					Dim: 64, N: 1024, P: 16, K: 2, KPrime: 2, Runs: 5, Mode: mode.m,
				}, rng)
			}
		})
	}
}

// ---- Table VII: STE decomposition analysis ----

func BenchmarkTable7Decomposition(b *testing.B) {
	net := automata.NewNetwork()
	core.BuildMacro(net, bitvec.Random(stats.NewRNG(8), 128), core.NewLayout(128), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.AnalyzeDecomposition(net)
		if rep.Savings(4) < 1 {
			b.Fatal("bad savings")
		}
	}
}

// ---- Table VIII: compounded gains ----

func BenchmarkTable8Gains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workload.All() {
			perfmodel.ComputeOptExtGains(w.Dim)
		}
	}
}

// ---- §V-A utilization / compilation ----

func BenchmarkCompileWordEmbedBoard(b *testing.B) {
	rng := stats.NewRNG(9)
	ds := bitvec.RandomDataset(rng, core.DefaultBoardCapacity(64), 64)
	net := automata.NewNetwork()
	core.BuildLinear(net, ds, core.NewLayout(64))
	cfg := ap.Gen1()
	cfg.CompilerAreaFactor = ap.PaperAreaFactor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ap.Compile(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig. 3/4: cycle-accurate macro execution ----

func BenchmarkFig3MacroTrace(b *testing.B) {
	l := core.PaperLayout(4)
	net := automata.NewNetwork()
	v, _ := bitvec.ParseBits("1011")
	q, _ := bitvec.ParseBits("1001")
	core.BuildMacro(net, v, l, 0)
	sim := automata.MustSimulator(net)
	stream := core.BuildQueryStream(q, l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := sim.Run(stream); len(got) != 1 {
			b.Fatal("trace broke")
		}
	}
}

// ---- Fig. 5: vector packing ----

func BenchmarkFig5Packing(b *testing.B) {
	for _, dim := range []int{32, 64, 128} {
		b.Run(itoa(dim), func(b *testing.B) {
			rng := stats.NewRNG(uint64(dim))
			ds := bitvec.RandomDataset(rng, 8, dim)
			l := core.NewLayout(dim)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net := automata.NewNetwork()
				core.BuildPacked(net, ds, l, 0)
				if _, err := ap.Compile(net, ap.Gen1()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Fig. 6: symbol stream multiplexing ----

func BenchmarkFig6Multiplexing(b *testing.B) {
	rng := stats.NewRNG(10)
	ds := bitvec.RandomDataset(rng, 8, 16)
	l := core.NewLayout(16)
	net := automata.NewNetwork()
	core.BuildMux(net, ds, l, 7)
	sim := automata.MustSimulator(net)
	queries := workload.Queries(rng, 7, 16)
	stream := core.BuildMuxStream(queries, l, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(stream)
	}
}

// ---- Fig. 7: reduction automaton ----

func BenchmarkFig7ReductionGroup(b *testing.B) {
	rng := stats.NewRNG(11)
	ds := bitvec.RandomDataset(rng, 16, 32)
	l := core.NewLayout(32)
	net := automata.NewNetwork()
	core.BuildReductionGroup(net, ds, l, 2, 0)
	sim := automata.MustSimulator(net)
	stream := core.BuildQueryStream(bitvec.Random(rng, 32), l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(stream)
	}
}

// ---- Fig. 8: dynamic-threshold comparison ----

func BenchmarkFig8Comparison(b *testing.B) {
	net := automata.NewNetwork()
	enA := net.AddSTE(automata.SingleClass('a'), automata.WithStart(automata.StartAll))
	enB := net.AddSTE(automata.SingleClass('b'), automata.WithStart(automata.StartAll))
	rst := net.AddSTE(automata.SingleClass('r'), automata.WithStart(automata.StartAll))
	core.BuildComparisonMacro(net, enA, enB, rst, 1)
	sim := automata.MustSimulator(net)
	stream := []byte("aababaabbr")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(stream)
	}
}

// ---- §II-C Jaccard and §VI-C reduction engine ----

func BenchmarkJaccardMacro(b *testing.B) {
	rng := stats.NewRNG(20)
	l := core.NewLayout(64)
	net := automata.NewNetwork()
	core.BuildJaccardMacro(net, bitvec.Random(rng, 64), l, 0)
	sim := automata.MustSimulator(net)
	stream := core.BuildQueryStream(bitvec.Random(rng, 64), l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(stream)
	}
}

func BenchmarkApproxEngine(b *testing.B) {
	rng := stats.NewRNG(21)
	ds := bitvec.RandomDataset(rng, 64, 32)
	queries := workload.Queries(rng, 2, 32)
	board := ap.NewBoard(ap.Gen2())
	eng, err := core.NewApproxEngine(board, ds, core.EngineOptions{Capacity: 64}, 16, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(queries, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Sharded multi-board engine ----

// BenchmarkShardedFastEngine measures the wall-clock scaling of the sharded
// fast engine at n=100k, d=128: one board is the serial configuration
// sweep; 4 and 8 boards scan their dataset slices concurrently. On a
// machine with >= 4 cores the 4-board run is expected to be >= 2x faster
// than 1 board (see internal/shard for the modeled-time scaling, which is
// machine-independent).
func BenchmarkShardedFastEngine(b *testing.B) {
	ds := apknn.RandomDataset(30, 100_000, 128)
	queries := apknn.RandomQueries(31, 16, 128)
	for _, boards := range []int{1, 2, 4, 8} {
		b.Run("Boards"+itoa(boards), func(b *testing.B) {
			s, err := apknn.NewSearcher(ds, apknn.Options{Exact: true, Boards: boards})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Query(queries, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedQueryBatch measures the asynchronous pipelined path: 8
// batches of 8 queries flowing through encode -> stream -> decode/merge.
func BenchmarkShardedQueryBatch(b *testing.B) {
	ds := apknn.RandomDataset(32, 100_000, 128)
	batches := make([][]apknn.Vector, 8)
	for i := range batches {
		batches[i] = apknn.RandomQueries(uint64(33+i), 8, 128)
	}
	s, err := apknn.NewSearcher(ds, apknn.Options{Exact: true, Boards: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for res := range s.QueryBatch(batches, 10) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// ---- Ablations and substrate micro-benchmarks ----

// BenchmarkSortAblation compares the three host-side top-k strategies the
// paper discusses (§III-B): full sort, bounded heap, k-selection.
func BenchmarkSortAblation(b *testing.B) {
	rng := stats.NewRNG(12)
	ds := bitvec.RandomDataset(rng, 1<<14, 64)
	q := bitvec.Random(rng, 64)
	b.Run("FullSort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knn.LinearFullSort(ds, q, 16)
		}
	})
	b.Run("BoundedHeap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knn.Linear(ds, q, 16)
		}
	})
	b.Run("QuickSelect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knn.LinearSelect(ds, q, 16)
		}
	})
}

// BenchmarkLayoutAblation compares the paper-exact stream layout against the
// monotonic default (the README.md timing-hazard fix costs a few extra
// cycles per query).
func BenchmarkLayoutAblation(b *testing.B) {
	rng := stats.NewRNG(13)
	v := bitvec.Random(rng, 64)
	q := bitvec.Random(rng, 64)
	for _, c := range []struct {
		name string
		l    core.Layout
	}{{"PaperExact", core.PaperLayout(64)}, {"Monotonic", core.NewLayout(64)}} {
		b.Run(c.name, func(b *testing.B) {
			net := automata.NewNetwork()
			core.BuildMacro(net, v, c.l, 0)
			sim := automata.MustSimulator(net)
			stream := core.BuildQueryStream(q, c.l)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Run(stream)
			}
		})
	}
}

func BenchmarkHammingDistance(b *testing.B) {
	rng := stats.NewRNG(14)
	for _, w := range workload.All() {
		b.Run(w.Name, func(b *testing.B) {
			x := bitvec.Random(rng, w.Dim)
			y := bitvec.Random(rng, w.Dim)
			b.SetBytes(int64(w.Dim / 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Hamming(y)
			}
		})
	}
}

func BenchmarkAPSimulatorThroughput(b *testing.B) {
	rng := stats.NewRNG(15)
	ds := bitvec.RandomDataset(rng, 64, 64)
	l := core.NewLayout(64)
	net := automata.NewNetwork()
	core.BuildLinear(net, ds, l)
	sim := automata.MustSimulator(net)
	stream := core.BuildQueryStream(bitvec.Random(rng, 64), l)
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(stream)
	}
}

func BenchmarkFPGAAccelerator(b *testing.B) {
	rng := stats.NewRNG(16)
	ds := bitvec.RandomDataset(rng, 1024, 64)
	queries := workload.Queries(rng, 16, 64)
	acc, err := fpga.New(fpga.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Search(context.Background(), ds, queries, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPUModel(b *testing.B) {
	rng := stats.NewRNG(17)
	ds := bitvec.RandomDataset(rng, 1024, 64)
	queries := workload.Queries(rng, 16, 64)
	dev, err := gpu.New(gpu.TitanX())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Search(context.Background(), ds, queries, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkITQTraining(b *testing.B) {
	rng := stats.NewRNG(18)
	data, _ := workload.GaussianFeatures(rng, 4, 50, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quantize.TrainITQ(data, quantize.ITQConfig{Bits: 16, Iters: 10}, stats.NewRNG(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	rng := stats.NewRNG(19)
	ds := bitvec.RandomDataset(rng, 4096, 64)
	b.Run("LSH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := index.BuildLSH(ds, index.DefaultLSHConfig(ds.Len(), 512), stats.NewRNG(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("KDForest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := index.BuildKDForest(ds, index.DefaultKDForestConfig(512), stats.NewRNG(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func itoa(v int) string {
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if i == len(buf) {
		return "0"
	}
	return string(buf[i:])
}
