package apknn

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ap"
	"repro/internal/aperr"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

func init() {
	mustRegister(backendFunc{Approx, newApproxIndex})
}

// approxIndex is the Table V baseline family: an approximate spatial index
// maps each query to candidate buckets, the buckets are scanned exactly,
// and quality is recall — not guaranteed top-k. Bucket size follows the
// board capacity, matching §III-D's "bucket ≈ one AP board configuration".
// Modeled time is the §V-B analytical model: host-side index traversal plus
// one AP bucket load and stream per probe.
type approxIndex struct {
	ds      *Dataset
	idx     index.Index
	kind    IndexKind
	probes  int
	model   perfmodel.IndexingModel
	device  ap.DeviceConfig
	ctrs    counters
	scanned atomic.Int64
	modeled atomic.Int64 // nanoseconds
}

func newApproxIndex(ds *Dataset, cfg Config) (Index, error) {
	capacity, err := core.ResolveCapacity(ds.Dim(), cfg.Capacity)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	models := perfmodel.IndexingModels()
	a := &approxIndex{ds: ds, kind: cfg.Index, probes: cfg.Probes, device: ap.Gen2()}
	if cfg.Generation == Gen1 {
		a.device = ap.Gen1()
	}
	switch cfg.Index {
	case LSH:
		a.idx, err = index.BuildLSH(ds, index.DefaultLSHConfig(ds.Len(), capacity), rng)
		a.model = models["MPLSH"]
		if a.probes == 0 {
			a.probes = 16
		}
	case KMeansTree:
		a.idx, err = index.BuildKMeansTree(ds, index.DefaultKMeansConfig(capacity), rng)
		a.model = models["K-Means"]
		if a.probes == 0 {
			a.probes = 8
		}
	case KDForest:
		a.idx, err = index.BuildKDForest(ds, index.DefaultKDForestConfig(capacity), rng)
		a.model = models["KD-Tree"]
		if a.probes == 0 {
			a.probes = 9
		}
	default:
		return nil, fmt.Errorf("apknn: unknown index kind %d", int(cfg.Index))
	}
	if err != nil {
		return nil, err
	}
	return a, nil
}

func (a *approxIndex) Search(ctx context.Context, queries []Vector, k int) ([][]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("approx: got k=%d: %w", k, aperr.ErrBadK)
	}
	for i, q := range queries {
		if q.Dim() != a.ds.Dim() {
			return nil, fmt.Errorf("approx: query %d dim %d != dataset dim %d: %w", i, q.Dim(), a.ds.Dim(), aperr.ErrDimMismatch)
		}
	}
	results := make([][]Neighbor, len(queries))
	scanned := 0
	for i, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, aperr.Canceled(err)
		}
		res, n := index.Search(a.ds, a.idx, q, k, a.probes)
		results[i] = res
		scanned += n
	}
	a.ctrs.countSearch(len(queries))
	a.scanned.Add(int64(scanned))
	a.modeled.Add(int64(perfmodel.IndexedAPTime(a.device, a.model, a.ds.Len(), len(queries), a.ds.Dim())))
	return results, nil
}

func (a *approxIndex) SearchBatch(ctx context.Context, batches [][]Vector, k int) <-chan BatchResult {
	return sequentialBatches(ctx, batches, k, a.Search)
}

func (a *approxIndex) ModeledTime() time.Duration { return time.Duration(a.modeled.Load()) }

func (a *approxIndex) Stats() Stats {
	st := a.ctrs.snapshot(Approx)
	st.Boards = 1
	st.Partitions = a.idx.NumBuckets()
	st.CandidatesScanned = a.scanned.Load()
	return st
}
