package apknn

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/ap"
	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/live"
	"repro/internal/wal"
)

// LiveIndex is a mutable Index: the compiled base the selected backend
// built, overlaid with a delta segment of recent Inserts and a tombstone
// set of Deletes, recompiled in the background once churn accumulates.
//
// Search and SearchBatch behave exactly like a freshly compiled index over
// the current live vector set — base and delta results merge through the
// shared (Dist, ID) tie-break with tombstones filtered — and never block on
// mutations or on a compaction in flight: the compactor builds the new base
// off to the side and swaps it in behind an atomic pointer (RCU). Modeled
// time stays honest about churn: delta scans charge the calibrated CPU scan
// model, and each compaction charges the backend's reconfiguration sweep
// (partitions x reconfiguration latency for the board-backed backends, the
// cost the paper's model assigns to a dataset change).
type LiveIndex struct {
	kind BackendKind
	eng  *live.Index
	rec  *RecoveryInfo // nil without WithDurability
	ctrs counters
}

// FsyncPolicy selects when a durable live index's write-ahead-log appends
// reach stable storage (WithDurability, apserve -fsync).
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged mutation
	// survives power loss. The default, and the slowest.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a timer (Config.FsyncInterval): a crash loses
	// at most one interval of acknowledged mutations.
	FsyncInterval
	// FsyncNever leaves flushing to the OS page cache: a process crash
	// loses nothing, power loss may lose the unsynced tail.
	FsyncNever
)

// String names the policy the way the -fsync flag spells it.
func (p FsyncPolicy) String() string { return p.wal().String() }

// wal maps the public policy onto the engine's.
func (p FsyncPolicy) wal() wal.SyncPolicy {
	switch p {
	case FsyncInterval:
		return wal.SyncInterval
	case FsyncNever:
		return wal.SyncNever
	default:
		return wal.SyncAlways
	}
}

// ParseFsyncPolicy parses "always", "interval" or "never" — the -fsync flag
// values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("apknn: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// RecoveryInfo reports what a durable OpenLive reconstructed from its
// directory.
type RecoveryInfo = live.RecoveryInfo

// OpenLive compiles ds for the selected backend like Open, but returns a
// mutable index. The seed dataset must not be mutated by the caller
// afterwards; new vectors enter through Insert. Close stops the background
// compactor when the index is no longer needed.
//
// With WithDurability, every mutation is write-ahead logged under the data
// directory and each compaction persists a snapshot there; an OpenLive over
// a directory holding prior state recovers the exact previous index — the
// seed dataset is then only checked for dimensional agreement and may be
// nil. Without durability the seed must be non-empty.
func OpenLive(ds *Dataset, opts ...Option) (*LiveIndex, error) {
	cfg := Config{Backend: AP, Seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.DataDir == "" && (ds == nil || ds.Len() == 0) {
		return nil, fmt.Errorf("apknn: %w", aperr.ErrEmptyDataset)
	}
	backendsMu.RLock()
	b, ok := backends[cfg.Backend]
	backendsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("apknn: %w %q (registered: %v)", aperr.ErrUnknownBackend, cfg.Backend, Backends())
	}
	compile := func(sub *bitvec.Dataset) (live.Searcher, error) {
		idx, err := b.Compile(sub, cfg)
		if err != nil {
			return nil, err
		}
		return liveSearcher{idx}, nil
	}
	lopts := live.Options{
		CompactThreshold: cfg.CompactThreshold,
		CompactInterval:  cfg.CompactInterval,
		ReconfigCost:     reconfigCost(cfg),
	}
	if cfg.DataDir != "" {
		eng, info, err := live.NewDurable(ds, compile, lopts, live.DurableOptions{
			Dir:          cfg.DataDir,
			Policy:       cfg.Fsync.wal(),
			SyncInterval: cfg.FsyncInterval,
		})
		if err != nil {
			return nil, err
		}
		return &LiveIndex{kind: cfg.Backend, eng: eng, rec: &info}, nil
	}
	eng, err := live.New(ds, compile, lopts)
	if err != nil {
		return nil, err
	}
	return &LiveIndex{kind: cfg.Backend, eng: eng}, nil
}

// reconfigCost models what one compaction's base swap costs: the
// board-backed backends pay one reconfiguration latency per partition of
// the new compilation (the full symbol-replacement sweep of §III-C); the
// single-device cost models (cpu, gpu, fpga, approx) rebuild host-side
// structures the paper's model does not charge device time for.
func reconfigCost(cfg Config) func(partitions int) time.Duration {
	switch cfg.Backend {
	case AP, Fast, Sharded:
	default:
		return nil
	}
	device := ap.Gen2()
	if cfg.Generation == Gen1 {
		device = ap.Gen1()
	}
	return func(partitions int) time.Duration {
		return time.Duration(partitions) * device.ReconfigLatency
	}
}

// liveSearcher adapts a compiled backend Index to the live engine's
// Searcher contract.
type liveSearcher struct {
	idx Index
}

func (s liveSearcher) Search(ctx context.Context, queries []bitvec.Vector, k int) ([][]Neighbor, error) {
	return s.idx.Search(ctx, queries, k)
}

func (s liveSearcher) ModeledTime() time.Duration { return s.idx.ModeledTime() }

func (s liveSearcher) Partitions() int { return s.idx.Stats().Partitions }

// Insert appends v to the live index and returns its global ID. IDs
// continue past the seed dataset and are never reused. The vector is
// searchable the moment Insert returns; the compiled base catches up at
// the next compaction.
func (l *LiveIndex) Insert(ctx context.Context, v Vector) (int, error) {
	return l.eng.Insert(ctx, v)
}

// Delete removes the vector with the given global ID from search results
// immediately (tombstone); storage and automata states are reclaimed by the
// next compaction. Deleting an unknown or already-deleted ID returns an
// error wrapping ErrNotFound.
func (l *LiveIndex) Delete(ctx context.Context, id int) error {
	return l.eng.Delete(ctx, id)
}

// Compact synchronously folds pending churn into a fresh base compilation,
// like the background compactor but on the caller's schedule.
func (l *LiveIndex) Compact(ctx context.Context) error { return l.eng.Compact(ctx) }

// Close stops the background compactor (and, when durable, the flush timer)
// and releases the write-ahead-log handle. Closing twice is safe. A
// non-durable index stays searchable and mutable afterwards; a durable one
// stays searchable but rejects further mutations with ErrClosed, because an
// unlogged mutation could not survive a crash.
func (l *LiveIndex) Close() error { return l.eng.Close() }

// Recovery reports what a durable OpenLive reconstructed from its data
// directory; ok is false for an index opened without WithDurability.
func (l *LiveIndex) Recovery() (RecoveryInfo, bool) {
	if l.rec == nil {
		return RecoveryInfo{}, false
	}
	return *l.rec, true
}

// Dataset returns a point-in-time copy of the merged live view — base plus
// delta minus tombstones, in ascending global-ID order, densely renumbered
// from zero. It is the exact vector set searches run against, so compiling
// the copy reproduces identical distances.
func (l *LiveIndex) Dataset() *Dataset { return l.eng.Dataset() }

// SaveDataset writes the merged live view (Dataset) to path in the binary
// dataset format: the saved file round-trips through LoadDataset + Open to
// the same search results the live index returns, instead of silently
// dropping pending delta inserts and resurrecting tombstoned vectors the
// way saving only the compiled base would. Global IDs are densely
// renumbered in the file; preserving them across restarts is what
// WithDurability is for.
func (l *LiveIndex) SaveDataset(path string) error { return l.eng.Dataset().SaveFile(path) }

// Len returns the number of live (inserted or seed, not deleted) vectors.
func (l *LiveIndex) Len() int { return l.eng.Len() }

// NextID returns the global ID the next Insert will assign — the index's
// ID-space high-water mark. Unlike Len it never shrinks: deletes remove
// vectors but their IDs are never reused, so local IDs span [0, NextID).
// The cluster tier sizes shard ranges from this, not Len, so global IDs
// cannot collide across shards after deletes.
func (l *LiveIndex) NextID() int { return l.eng.NextID() }

// Search implements Index over the current live vector set.
func (l *LiveIndex) Search(ctx context.Context, queries []Vector, k int) ([][]Neighbor, error) {
	res, err := l.eng.Search(ctx, queries, k)
	if err != nil {
		return nil, err
	}
	l.ctrs.countSearch(len(queries))
	return res, nil
}

// SearchBatch implements Index; batches run sequentially through Search,
// each against the newest snapshot at its turn.
func (l *LiveIndex) SearchBatch(ctx context.Context, batches [][]Vector, k int) <-chan BatchResult {
	return sequentialBatches(ctx, batches, k, l.Search)
}

// ModeledTime returns the live index's accumulated modeled wall-clock:
// current and retired base generations, delta scans, and compaction
// reconfiguration sweeps.
func (l *LiveIndex) ModeledTime() time.Duration { return l.eng.ModeledTime() }

// Stats snapshots the current base backend's counters plus the Live block.
// Queries and Batches span the whole live index's lifetime; the other
// backend counters (symbols, reconfigs, per-board times) belong to the
// current base generation.
func (l *LiveIndex) Stats() Stats {
	var st Stats
	if b, ok := l.eng.Base().(liveSearcher); ok {
		st = b.idx.Stats()
	}
	st.Backend = l.kind
	st.Queries = l.ctrs.queries.Load()
	st.Batches = l.ctrs.batches.Load()
	ls := l.eng.Stats()
	st.Live = &LiveStats{
		Inserts:       ls.Inserts,
		Deletes:       ls.Deletes,
		BaseSize:      ls.BaseSize,
		DeltaSize:     ls.DeltaSize,
		Tombstones:    ls.Tombstones,
		Compactions:   ls.Compactions,
		Generation:    ls.Generation,
		MixedSearches: ls.MixedSearches,
		ReconfigTime:  ls.ReconfigTime,
		DeltaScanTime: ls.DeltaScanTime,
	}
	if d, ok := l.eng.DurStats(); ok {
		st.Durability = &DurabilityStats{
			Dir:                d.Dir,
			Fsync:              d.Policy,
			Appends:            d.Appends,
			AppendedBytes:      d.AppendedBytes,
			Fsyncs:             d.Fsyncs,
			WALSize:            d.WALSize,
			Recovered:          d.Recovered,
			ReplayedRecords:    d.ReplayedRecords,
			ReplayedBytes:      d.ReplayedBytes,
			ReplayTorn:         d.ReplayTorn,
			SnapshotGeneration: d.SnapshotGen,
			SnapshotAge:        d.SnapshotAge,
		}
	}
	return st
}

// ReadDataset parses a dataset serialized with Dataset.WriteTo — the binary
// format apknn and apserve persist datasets in (-save/-load).
func ReadDataset(r io.Reader) (*Dataset, error) { return bitvec.ReadDataset(r) }

// LoadDataset reads a dataset file saved with SaveDataset or -save.
func LoadDataset(path string) (*Dataset, error) { return bitvec.LoadFile(path) }

// SaveDataset writes ds to path in the binary dataset format.
func SaveDataset(ds *Dataset, path string) error { return ds.SaveFile(path) }
