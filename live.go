package apknn

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/ap"
	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/live"
)

// LiveIndex is a mutable Index: the compiled base the selected backend
// built, overlaid with a delta segment of recent Inserts and a tombstone
// set of Deletes, recompiled in the background once churn accumulates.
//
// Search and SearchBatch behave exactly like a freshly compiled index over
// the current live vector set — base and delta results merge through the
// shared (Dist, ID) tie-break with tombstones filtered — and never block on
// mutations or on a compaction in flight: the compactor builds the new base
// off to the side and swaps it in behind an atomic pointer (RCU). Modeled
// time stays honest about churn: delta scans charge the calibrated CPU scan
// model, and each compaction charges the backend's reconfiguration sweep
// (partitions x reconfiguration latency for the board-backed backends, the
// cost the paper's model assigns to a dataset change).
type LiveIndex struct {
	kind BackendKind
	eng  *live.Index
	ctrs counters
}

// OpenLive compiles ds for the selected backend like Open, but returns a
// mutable index. The seed dataset must be non-empty and must not be mutated
// by the caller afterwards; new vectors enter through Insert. Close stops
// the background compactor when the index is no longer needed.
func OpenLive(ds *Dataset, opts ...Option) (*LiveIndex, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("apknn: %w", aperr.ErrEmptyDataset)
	}
	cfg := Config{Backend: AP, Seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	backendsMu.RLock()
	b, ok := backends[cfg.Backend]
	backendsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("apknn: %w %q (registered: %v)", aperr.ErrUnknownBackend, cfg.Backend, Backends())
	}
	compile := func(sub *bitvec.Dataset) (live.Searcher, error) {
		idx, err := b.Compile(sub, cfg)
		if err != nil {
			return nil, err
		}
		return liveSearcher{idx}, nil
	}
	eng, err := live.New(ds, compile, live.Options{
		CompactThreshold: cfg.CompactThreshold,
		CompactInterval:  cfg.CompactInterval,
		ReconfigCost:     reconfigCost(cfg),
	})
	if err != nil {
		return nil, err
	}
	return &LiveIndex{kind: cfg.Backend, eng: eng}, nil
}

// reconfigCost models what one compaction's base swap costs: the
// board-backed backends pay one reconfiguration latency per partition of
// the new compilation (the full symbol-replacement sweep of §III-C); the
// single-device cost models (cpu, gpu, fpga, approx) rebuild host-side
// structures the paper's model does not charge device time for.
func reconfigCost(cfg Config) func(partitions int) time.Duration {
	switch cfg.Backend {
	case AP, Fast, Sharded:
	default:
		return nil
	}
	device := ap.Gen2()
	if cfg.Generation == Gen1 {
		device = ap.Gen1()
	}
	return func(partitions int) time.Duration {
		return time.Duration(partitions) * device.ReconfigLatency
	}
}

// liveSearcher adapts a compiled backend Index to the live engine's
// Searcher contract.
type liveSearcher struct {
	idx Index
}

func (s liveSearcher) Search(ctx context.Context, queries []bitvec.Vector, k int) ([][]Neighbor, error) {
	return s.idx.Search(ctx, queries, k)
}

func (s liveSearcher) ModeledTime() time.Duration { return s.idx.ModeledTime() }

func (s liveSearcher) Partitions() int { return s.idx.Stats().Partitions }

// Insert appends v to the live index and returns its global ID. IDs
// continue past the seed dataset and are never reused. The vector is
// searchable the moment Insert returns; the compiled base catches up at
// the next compaction.
func (l *LiveIndex) Insert(ctx context.Context, v Vector) (int, error) {
	return l.eng.Insert(ctx, v)
}

// Delete removes the vector with the given global ID from search results
// immediately (tombstone); storage and automata states are reclaimed by the
// next compaction. Deleting an unknown or already-deleted ID returns an
// error wrapping ErrNotFound.
func (l *LiveIndex) Delete(ctx context.Context, id int) error {
	return l.eng.Delete(ctx, id)
}

// Compact synchronously folds pending churn into a fresh base compilation,
// like the background compactor but on the caller's schedule.
func (l *LiveIndex) Compact(ctx context.Context) error { return l.eng.Compact(ctx) }

// Close stops the background compactor. The index stays searchable and
// mutable; only automatic compaction stops.
func (l *LiveIndex) Close() error { return l.eng.Close() }

// Len returns the number of live (inserted or seed, not deleted) vectors.
func (l *LiveIndex) Len() int { return l.eng.Len() }

// NextID returns the global ID the next Insert will assign — the index's
// ID-space high-water mark. Unlike Len it never shrinks: deletes remove
// vectors but their IDs are never reused, so local IDs span [0, NextID).
// The cluster tier sizes shard ranges from this, not Len, so global IDs
// cannot collide across shards after deletes.
func (l *LiveIndex) NextID() int { return l.eng.NextID() }

// Search implements Index over the current live vector set.
func (l *LiveIndex) Search(ctx context.Context, queries []Vector, k int) ([][]Neighbor, error) {
	res, err := l.eng.Search(ctx, queries, k)
	if err != nil {
		return nil, err
	}
	l.ctrs.countSearch(len(queries))
	return res, nil
}

// SearchBatch implements Index; batches run sequentially through Search,
// each against the newest snapshot at its turn.
func (l *LiveIndex) SearchBatch(ctx context.Context, batches [][]Vector, k int) <-chan BatchResult {
	return sequentialBatches(ctx, batches, k, l.Search)
}

// ModeledTime returns the live index's accumulated modeled wall-clock:
// current and retired base generations, delta scans, and compaction
// reconfiguration sweeps.
func (l *LiveIndex) ModeledTime() time.Duration { return l.eng.ModeledTime() }

// Stats snapshots the current base backend's counters plus the Live block.
// Queries and Batches span the whole live index's lifetime; the other
// backend counters (symbols, reconfigs, per-board times) belong to the
// current base generation.
func (l *LiveIndex) Stats() Stats {
	var st Stats
	if b, ok := l.eng.Base().(liveSearcher); ok {
		st = b.idx.Stats()
	}
	st.Backend = l.kind
	st.Queries = l.ctrs.queries.Load()
	st.Batches = l.ctrs.batches.Load()
	ls := l.eng.Stats()
	st.Live = &LiveStats{
		Inserts:       ls.Inserts,
		Deletes:       ls.Deletes,
		BaseSize:      ls.BaseSize,
		DeltaSize:     ls.DeltaSize,
		Tombstones:    ls.Tombstones,
		Compactions:   ls.Compactions,
		Generation:    ls.Generation,
		MixedSearches: ls.MixedSearches,
		ReconfigTime:  ls.ReconfigTime,
		DeltaScanTime: ls.DeltaScanTime,
	}
	return st
}

// ReadDataset parses a dataset serialized with Dataset.WriteTo — the binary
// format apknn and apserve persist datasets in (-save/-load).
func ReadDataset(r io.Reader) (*Dataset, error) { return bitvec.ReadDataset(r) }

// LoadDataset reads a dataset file saved with SaveDataset or -save.
func LoadDataset(path string) (*Dataset, error) { return bitvec.LoadFile(path) }

// SaveDataset writes ds to path in the binary dataset format.
func SaveDataset(ds *Dataset, path string) error { return ds.SaveFile(path) }
